package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestMeterChargeAndTotals(t *testing.T) {
	m := NewMeter()
	m.Charge(PMemRead, 100*time.Nanosecond)
	m.Charge(PMemRead, 50*time.Nanosecond)
	m.Charge(DRAMWrite, 10*time.Nanosecond)
	if got := m.Total(PMemRead); got != 150*time.Nanosecond {
		t.Fatalf("Total(PMemRead) = %v", got)
	}
	if got := m.Ops(PMemRead); got != 2 {
		t.Fatalf("Ops(PMemRead) = %d", got)
	}
	if got := m.Sum(PMemRead, DRAMWrite); got != 160*time.Nanosecond {
		t.Fatalf("Sum = %v", got)
	}
	if got := m.Sum(); got != 160*time.Nanosecond {
		t.Fatalf("Sum(all) = %v", got)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.Charge(PMemRead, time.Nanosecond) // must not panic
	if m.Total(PMemRead) != 0 || m.Ops(PMemRead) != 0 || m.Sum() != 0 {
		t.Fatal("nil meter returned non-zero")
	}
	_ = m.Snapshot()
	m.Reset()
}

func TestMeterConcurrentCharges(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Charge(Compute, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Total(Compute); got != 8000*time.Nanosecond {
		t.Fatalf("Total = %v, want 8000ns", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	m := NewMeter()
	m.Charge(SSDWrite, 5*time.Nanosecond)
	s1 := m.Snapshot()
	m.Charge(SSDWrite, 7*time.Nanosecond)
	m.Charge(NetTx, 3*time.Nanosecond)
	d := m.Snapshot().Sub(s1)
	if d.Total(SSDWrite) != 7*time.Nanosecond || d.OpCount(SSDWrite) != 1 {
		t.Fatalf("delta ssd = %v/%d", d.Total(SSDWrite), d.OpCount(SSDWrite))
	}
	if d.Total(NetTx) != 3*time.Nanosecond {
		t.Fatalf("delta net = %v", d.Total(NetTx))
	}
	if d.Sum() != 10*time.Nanosecond {
		t.Fatalf("delta sum = %v", d.Sum())
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.Charge(LockSync, time.Microsecond)
	m.Reset()
	if m.Sum() != 0 {
		t.Fatal("reset left residue")
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range Categories() {
		if s := c.String(); s == "" || s[0] == '(' {
			t.Fatalf("category %d has bad name %q", int(c), s)
		}
	}
	if Category(99).String() != "category(99)" {
		t.Fatal("unknown category name")
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	c.Advance(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Set(2 * time.Second)
	if c.Now() != 2*time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set did not panic")
		}
	}()
	c.Set(time.Second)
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	c.Advance(-time.Nanosecond)
}

func TestSnapshotString(t *testing.T) {
	m := NewMeter()
	if s := m.Snapshot().String(); s != "(empty)" {
		t.Fatalf("empty snapshot string = %q", s)
	}
	m.Charge(PMemWrite, time.Nanosecond)
	if s := m.Snapshot().String(); s == "(empty)" {
		t.Fatal("non-empty snapshot printed as empty")
	}
}
