// Package simclock provides virtual-time accounting for the discrete-event
// performance model.
//
// The reproduction runs every engine functionally (real hash tables, real
// locks, real flushes) but measures large-scale performance in *virtual*
// nanoseconds: each device access charges a calibrated cost to a Meter, and
// the epoch simulator (internal/sim) combines the charged costs with a
// parallelism model to obtain phase and epoch times. This lets a 500 GB,
// 16-GPU, multi-hour experiment from the paper run on a single laptop core
// while preserving the relative shapes the paper reports.
package simclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Category labels one bucket of virtual cost. Engines charge costs under the
// category of the hardware resource they consume so the simulator can apply
// per-resource parallelism and interference models.
type Category int

const (
	// DRAMRead is time spent reading entry payloads from DRAM.
	DRAMRead Category = iota
	// DRAMWrite is time spent writing entry payloads to DRAM.
	DRAMWrite
	// PMemRead is time spent reading from persistent memory.
	PMemRead
	// PMemWrite is time spent writing (including flushes) to persistent memory.
	PMemWrite
	// SSDRead is time spent reading from the simulated flash SSD.
	SSDRead
	// SSDWrite is time spent writing to the simulated flash SSD.
	SSDWrite
	// NetTx is time spent moving bytes over the simulated network.
	NetTx
	// LockSync is serialization overhead on sharded/striped locks: lock
	// acquisitions, fences and other per-operation synchronization costs
	// that parallelize across shards.
	LockSync
	// GlobalSync is serialization on a single global structure (e.g.
	// Ori-Cache's one LRU list lock): it cannot parallelize and its
	// effective cost grows with the number of concurrent requesters.
	GlobalSync
	// Compute is CPU time of the server-side request handling itself
	// (hashing, index probes, optimizer math).
	Compute
	numCategories
)

// String returns the category's short name.
func (c Category) String() string {
	switch c {
	case DRAMRead:
		return "dram_read"
	case DRAMWrite:
		return "dram_write"
	case PMemRead:
		return "pmem_read"
	case PMemWrite:
		return "pmem_write"
	case SSDRead:
		return "ssd_read"
	case SSDWrite:
		return "ssd_write"
	case NetTx:
		return "net_tx"
	case LockSync:
		return "lock_sync"
	case GlobalSync:
		return "global_sync"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Categories returns all defined categories in order.
func Categories() []Category {
	cats := make([]Category, numCategories)
	for i := range cats {
		cats[i] = Category(i)
	}
	return cats
}

// Meter accumulates virtual costs per category. It is safe for concurrent
// use; charging is a single atomic add.
type Meter struct {
	ns  [numCategories]atomic.Int64
	ops [numCategories]atomic.Int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Charge adds d of virtual time under category c and counts one operation.
// A nil meter ignores the charge, so un-instrumented use is free of nil
// checks at call sites.
func (m *Meter) Charge(c Category, d time.Duration) {
	if m == nil {
		return
	}
	m.ns[c].Add(int64(d))
	m.ops[c].Add(1)
}

// ChargeN adds d of virtual time under category c counting n operations.
func (m *Meter) ChargeN(c Category, d time.Duration, n int64) {
	if m == nil {
		return
	}
	m.ns[c].Add(int64(d))
	m.ops[c].Add(n)
}

// Total returns the accumulated virtual time under category c.
func (m *Meter) Total(c Category) time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.ns[c].Load())
}

// Ops returns the number of operations charged under category c.
func (m *Meter) Ops(c Category) int64 {
	if m == nil {
		return 0
	}
	return m.ops[c].Load()
}

// Sum returns the accumulated virtual time across the given categories.
// With no arguments it sums every category.
func (m *Meter) Sum(cats ...Category) time.Duration {
	if m == nil {
		return 0
	}
	if len(cats) == 0 {
		cats = Categories()
	}
	var total int64
	for _, c := range cats {
		total += m.ns[c].Load()
	}
	return time.Duration(total)
}

// Snapshot captures the meter's current totals.
func (m *Meter) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	for i := 0; i < int(numCategories); i++ {
		s.NS[i] = m.ns[i].Load()
		s.Ops[i] = m.ops[i].Load()
	}
	return s
}

// Reset zeroes every category.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	for i := 0; i < int(numCategories); i++ {
		m.ns[i].Store(0)
		m.ops[i].Store(0)
	}
}

// Snapshot is a point-in-time copy of a Meter, used to compute per-phase
// deltas (Sub) without pausing the engine.
type Snapshot struct {
	NS  [numCategories]int64
	Ops [numCategories]int64
}

// Sub returns the per-category difference s - earlier.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	var d Snapshot
	for i := 0; i < int(numCategories); i++ {
		d.NS[i] = s.NS[i] - earlier.NS[i]
		d.Ops[i] = s.Ops[i] - earlier.Ops[i]
	}
	return d
}

// Total returns the virtual time of category c in the snapshot.
func (s Snapshot) Total(c Category) time.Duration { return time.Duration(s.NS[c]) }

// OpCount returns the operation count of category c in the snapshot.
func (s Snapshot) OpCount(c Category) int64 { return s.Ops[c] }

// Sum returns the virtual time across the given categories (all when empty).
func (s Snapshot) Sum(cats ...Category) time.Duration {
	if len(cats) == 0 {
		cats = Categories()
	}
	var total int64
	for _, c := range cats {
		total += s.NS[c]
	}
	return time.Duration(total)
}

// String formats the snapshot's non-zero categories.
func (s Snapshot) String() string {
	out := ""
	for _, c := range Categories() {
		if s.NS[c] == 0 && s.Ops[c] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%v/%dops", c, time.Duration(s.NS[c]), s.Ops[c])
	}
	if out == "" {
		return "(empty)"
	}
	return out
}

// Clock is a monotonically advancing virtual clock used by the epoch
// simulator to schedule checkpoint triggers and timestamp trace events.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d (d must be non-negative) and returns
// the new time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("simclock: negative advance")
	}
	return time.Duration(c.now.Add(int64(d)))
}

// Set jumps the clock to t; t must not be earlier than the current time.
func (c *Clock) Set(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) < cur {
			panic("simclock: clock moved backwards")
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
