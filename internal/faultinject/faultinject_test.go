package faultinject

import (
	"errors"
	"net"
	"testing"
	"time"

	"openembedding/internal/obs"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if f := in.On(PointConnWrite, "x"); f.Kind != KindNone {
		t.Fatalf("nil injector fired %v", f.Kind)
	}
	if got := in.Seed(); got != 0 {
		t.Fatalf("nil Seed = %d", got)
	}
	in.CountCrash()
	if n := len(in.Counts()); n != 0 {
		t.Fatalf("nil Counts has %d entries", n)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if wrapped := in.WrapConn(c1, "x"); wrapped != c1 {
		t.Fatal("nil WrapConn must return the conn unchanged")
	}
}

func TestScriptedNthFiresExactlyOnce(t *testing.T) {
	in := New(1, Rule{Point: PointConnWrite, Kind: KindReset, Nth: 3})
	for i := 1; i <= 10; i++ {
		f := in.On(PointConnWrite, "a")
		if (f.Kind == KindReset) != (i == 3) {
			t.Fatalf("call %d: kind %v", i, f.Kind)
		}
	}
	if got := in.Counts()[KindReset]; got != 1 {
		t.Fatalf("reset count = %d, want 1", got)
	}
}

func TestLabelScoping(t *testing.T) {
	in := New(1, Rule{Point: PointConnWrite, Label: "node1", Kind: KindTorn, Nth: 1})
	if f := in.On(PointConnWrite, "node0"); f.Kind != KindNone {
		t.Fatalf("fired on wrong label: %v", f.Kind)
	}
	if f := in.On(PointConnWrite, "node1"); f.Kind != KindTorn {
		t.Fatalf("did not fire on its label: %v", f.Kind)
	}
	// Per-label occurrence counters are independent: node1's first call is
	// occurrence 1 even though node0 was called first.
}

func TestCountCap(t *testing.T) {
	in := New(1, Rule{Point: PointConnRead, Kind: KindReset, Prob: 1, Count: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.On(PointConnRead, "a").Kind == KindReset {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (Count cap)", fired)
	}
}

func TestSameSeedSameDecisions(t *testing.T) {
	rules := []Rule{
		{Point: PointConnWrite, Kind: KindReset, Prob: 0.3},
		{Point: PointConnRead, Kind: KindDelay, Prob: 0.2, Delay: time.Millisecond},
		{Point: PointDial, Kind: KindReset, Prob: 0.5},
	}
	run := func(seed uint64) []Kind {
		in := New(seed, rules...)
		var out []Kind
		for i := 0; i < 200; i++ {
			out = append(out, in.On(PointConnWrite, "n0").Kind)
			out = append(out, in.On(PointConnRead, "n0").Kind)
			out = append(out, in.On(PointDial, "n1").Kind)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs for same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 600-decision streams")
	}
}

func TestInterleavingInvariance(t *testing.T) {
	// Decisions are keyed per (point, label) stream, so interleaving two
	// labels differently must not change either label's decision sequence.
	rules := []Rule{{Point: PointConnWrite, Kind: KindReset, Prob: 0.4}}
	seq := func(interleaved bool) (a, b []Kind) {
		in := New(7, rules...)
		if interleaved {
			for i := 0; i < 50; i++ {
				a = append(a, in.On(PointConnWrite, "a").Kind)
				b = append(b, in.On(PointConnWrite, "b").Kind)
			}
			return a, b
		}
		for i := 0; i < 50; i++ {
			a = append(a, in.On(PointConnWrite, "a").Kind)
		}
		for i := 0; i < 50; i++ {
			b = append(b, in.On(PointConnWrite, "b").Kind)
		}
		return a, b
	}
	a1, b1 := seq(true)
	a2, b2 := seq(false)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatalf("decision %d depends on cross-stream interleaving", i)
		}
	}
}

func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(1, Rule{Point: PointConnWrite, Kind: KindTorn, Nth: 1})
	in.SetObs(reg)
	in.On(PointConnWrite, "a")
	in.CountCrash()
	snap := reg.Snapshot()
	if got := snap.Counters["faultinject_injected_torn"]; got != 1 {
		t.Fatalf("faultinject_injected_torn = %d, want 1", got)
	}
	if got := snap.Counters["faultinject_injected_crash"]; got != 1 {
		t.Fatalf("faultinject_injected_crash = %d, want 1", got)
	}
}

func TestWrapConnFaults(t *testing.T) {
	// Torn: a strict prefix reaches the peer, then the conn dies.
	in := New(1, Rule{Point: PointConnWrite, Label: "w", Kind: KindTorn, Nth: 1})
	a, b := net.Pipe()
	defer b.Close()
	w := in.WrapConn(a, "w")
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		done <- buf[:n]
	}()
	msg := []byte("0123456789")
	n, err := w.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if n != len(msg)/2 {
		t.Fatalf("torn write reported %d bytes, want %d", n, len(msg)/2)
	}
	if got := <-done; len(got) >= len(msg) {
		t.Fatalf("peer received full message (%q) despite torn write", got)
	}

	// Drop: the write "succeeds" but nothing arrives and the conn closes.
	in2 := New(1, Rule{Point: PointConnWrite, Label: "w", Kind: KindDrop, Nth: 1})
	c, d := net.Pipe()
	defer d.Close()
	w2 := in2.WrapConn(c, "w")
	readErr := make(chan error, 1)
	go func() {
		_, err := d.Read(make([]byte, 16))
		readErr <- err
	}()
	if n, err := w2.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("drop write = (%d, %v), want full fake success", n, err)
	}
	if err := <-readErr; err == nil {
		t.Fatal("peer read succeeded despite dropped write")
	}
}

func TestCrashSchedule(t *testing.T) {
	sched := CrashSchedule(99, 3, 12, 2)
	perNode := make(map[int]int)
	for batch, nodes := range sched {
		if batch < 1 || batch >= 12 {
			t.Fatalf("crash scheduled at out-of-range batch %d", batch)
		}
		for i, n := range nodes {
			perNode[n]++
			if i > 0 && nodes[i-1] >= n {
				t.Fatalf("batch %d node list not sorted/unique: %v", batch, nodes)
			}
		}
	}
	for n := 0; n < 3; n++ {
		if perNode[n] != 2 {
			t.Fatalf("node %d scheduled %d crashes, want 2", n, perNode[n])
		}
	}
	// Deterministic in the seed.
	again := CrashSchedule(99, 3, 12, 2)
	if len(again) != len(sched) {
		t.Fatal("CrashSchedule not deterministic")
	}
	for b, nodes := range sched {
		o := again[b]
		if len(o) != len(nodes) {
			t.Fatalf("batch %d differs between identical calls", b)
		}
		for i := range nodes {
			if o[i] != nodes[i] {
				t.Fatalf("batch %d differs between identical calls", b)
			}
		}
	}
}
