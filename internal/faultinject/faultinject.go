// Package faultinject is a deterministic, seeded fault injector for the
// distributed stack: connection resets, torn frames, delays, dropped
// responses and whole-node crash schedules, at scripted or seeded-random
// points. A nil *Injector is valid everywhere and costs one nil check, so
// the fault-free hot path is unchanged.
//
// Determinism contract: every decision is a pure function of (seed, point,
// label, per-stream occurrence number, rule index) — never of wall-clock
// time, goroutine interleaving across streams, or global RNG state — so a
// chaos run replays exactly from its seed as long as each (point, label)
// stream is itself issued in a deterministic order (the RPC client
// serializes requests per connection, which gives exactly that). The
// package-level marker below puts it under the oevet faultdet analyzer:
// all randomness must flow from the injected seed.
//
//oevet:fault-deterministic
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/obs"
)

// Point identifies where in the stack a fault can be injected.
type Point uint8

// Injection points.
const (
	// PointDial fires when a client establishes a connection.
	PointDial Point = iota
	// PointConnRead fires on a wrapped connection's Read.
	PointConnRead
	// PointConnWrite fires on a wrapped connection's Write.
	PointConnWrite
	// PointPMemFlush fires on every simulated PMem flush (CLWB+SFENCE
	// analog): the media-fault point for bit-rot in flushed lines,
	// silently-dropped flushes and line poisoning.
	PointPMemFlush
	// PointPMemRead fires on simulated PMem reads (reserved for read-side
	// media faults; poisoned-line reads fail without consulting a rule).
	PointPMemRead
	numPoints
)

func (p Point) String() string {
	switch p {
	case PointDial:
		return "dial"
	case PointConnRead:
		return "conn-read"
	case PointConnWrite:
		return "conn-write"
	case PointPMemFlush:
		return "pmem-flush"
	case PointPMemRead:
		return "pmem-read"
	default:
		return fmt.Sprintf("point-%d", uint8(p))
	}
}

// Kind is the fault to inject.
type Kind uint8

// Fault kinds.
const (
	// KindNone means no fault.
	KindNone Kind = iota
	// KindReset closes the connection and fails the operation.
	KindReset
	// KindTorn writes a prefix of the frame, then closes the connection:
	// the peer observes a mid-frame failure.
	KindTorn
	// KindDelay sleeps Rule.Delay before performing the operation.
	KindDelay
	// KindDrop pretends the write succeeded but discards the bytes and
	// closes the connection afterwards, so a fully-processed response never
	// reaches the peer.
	KindDrop
	// KindCrash marks a whole-node crash point (used by CrashSchedule and
	// counted like the wire kinds; the harness performs the crash).
	KindCrash
	// KindBitRot flips one deterministic bit (chosen by Fault.Arg) inside
	// the flushed range: the media silently corrupts a line that was
	// persisted correctly.
	KindBitRot
	// KindPoison marks the flushed range as uncorrectable: subsequent reads
	// covering any part of it fail with a typed poison error until the
	// range is fully rewritten (DIMM line poisoning).
	KindPoison
	// KindPartition models an asymmetric link partition: the operation
	// fails with a timeout-flavored error (the bytes vanish into the
	// network, the caller's deadline expires) rather than a hard reset.
	// Because rules carry a direction (the Point: dial vs read vs write)
	// and a peer (the Label), a rule set can express one-way and partial
	// partitions — A cannot reach B while B still reaches A.
	KindPartition
	// KindSlow models a persistently slow link or peer: the operation is
	// delayed by Rule.Delay and then performed normally. Unlike KindDelay
	// (a transient hiccup), KindSlow is intended to be armed with Prob 1
	// over an occurrence window so a link stays slow for a while — the
	// shape a suspicion-based failure detector must catch.
	KindSlow
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindReset:
		return "reset"
	case KindTorn:
		return "torn"
	case KindDelay:
		return "delay"
	case KindDrop:
		return "drop"
	case KindCrash:
		return "crash"
	case KindBitRot:
		return "bitrot"
	case KindPoison:
		return "poison"
	case KindPartition:
		return "partition"
	case KindSlow:
		return "slow"
	default:
		return fmt.Sprintf("kind-%d", uint8(k))
	}
}

// ErrInjected matches (via errors.Is) every error produced by an injected
// fault, so tests can distinguish injected failures from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule arms one fault. A rule fires either on an exact occurrence number
// (Nth, scripted) or with probability Prob per matching call
// (seeded-random); Count bounds total fires.
type Rule struct {
	// Point selects the injection point the rule applies to.
	Point Point
	// Label restricts the rule to one stream label ("" matches every
	// label). Labels must be deterministic across runs: node indexes, not
	// ephemeral addresses.
	Label string
	// Kind is the fault to inject when the rule fires.
	Kind Kind
	// Prob fires the rule with this probability per matching call, decided
	// by the injector seed (ignored when Nth is set).
	Prob float64
	// Nth fires the rule exactly on the Nth matching call of its (point,
	// label) stream, 1-based. 0 means use Prob.
	Nth uint64
	// Count caps how many times the rule fires in total; 0 is unlimited.
	Count int
	// Delay is the sleep for KindDelay and KindSlow.
	Delay time.Duration
	// From and Until bound the rule to an occurrence window of its (point,
	// label) stream: the rule is eligible only while From <= n < Until
	// (1-based; From 0 means "from the first call", Until 0 means "never
	// heals"). Windows are how partitions and slow links start and heal
	// deterministically: the boundary is an occurrence number, a pure
	// function of the stream, never a wall-clock instant.
	From uint64
	// Until is the first occurrence number at which the rule stops
	// matching (exclusive). 0 means no upper bound.
	Until uint64
}

// Fault is one injection decision. Arg is a deterministic hash of the
// decision coordinates (seed, point, label, occurrence) that fault
// implementations use for any further choice the fault needs — e.g. which
// bit of a flushed line rots — so the whole fault, not just its firing, is
// a pure function of the seed.
type Fault struct {
	Kind  Kind
	Delay time.Duration
	Arg   uint64
}

type streamKey struct {
	point Point
	label string
}

// VirtualClock is the clock surface the injector needs to realize injected
// delays in virtual time instead of wall time: *simclock.Clock satisfies
// it. Advancing a virtual clock is what lets a deterministic soak express
// "this link was slow for 300ms" without sleeping 300ms of CI wall time —
// and what lets a virtual-clock-driven failure detector observe the
// slowness.
type VirtualClock interface {
	Advance(d time.Duration) time.Duration
}

// Injector decides faults from a seed and a rule set. The zero value of
// *Injector (nil) injects nothing.
type Injector struct {
	seed  uint64
	rules []Rule

	mu    sync.Mutex
	calls map[streamKey]uint64 // per-(point,label) occurrence counter
	fired []int                // per-rule fire count (for Count caps)
	clock VirtualClock         // nil: injected delays sleep wall time

	total [numKinds]atomic.Int64

	// counters (nil, and free, without SetObs)
	injected [numKinds]*obs.Counter
}

// New builds an injector with the given seed and rules.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		seed:  seed,
		rules: append([]Rule(nil), rules...),
		calls: make(map[streamKey]uint64),
		fired: make([]int, len(rules)),
	}
}

// Seed returns the injector's seed (printed by chaos tests so a failure
// reproduces).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// SetClock attaches a virtual clock: from then on every injected delay
// (KindDelay, KindSlow) advances the clock instead of sleeping wall time.
// Attach before any traffic flows; nil detaches.
func (in *Injector) SetClock(c VirtualClock) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.clock = c
	in.mu.Unlock()
}

// Sleep realizes an injected delay: against the attached virtual clock when
// one is set, as a wall-clock sleep otherwise. Nil-safe.
func (in *Injector) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	var clk VirtualClock
	if in != nil {
		in.mu.Lock()
		clk = in.clock
		in.mu.Unlock()
	}
	if clk != nil {
		clk.Advance(d)
		return
	}
	time.Sleep(d)
}

// SetObs registers the faultinject_injected_<kind> counters on reg; every
// fired fault increments its kind's counter.
func (in *Injector) SetObs(reg *obs.Registry) {
	if in == nil || reg == nil {
		return
	}
	for k := KindReset; k < numKinds; k++ {
		in.injected[k] = reg.Counter("faultinject_injected_" + k.String())
	}
}

// On consumes one occurrence of the (point, label) stream and returns the
// fault to inject, KindNone for most calls. Safe for concurrent use; nil
// receiver always returns KindNone.
func (in *Injector) On(point Point, label string) Fault {
	if in == nil {
		return Fault{}
	}
	in.mu.Lock()
	key := streamKey{point: point, label: label}
	n := in.calls[key] + 1
	in.calls[key] = n
	var f Fault
	for ri := range in.rules {
		r := &in.rules[ri]
		if r.Point != point || (r.Label != "" && r.Label != label) {
			continue
		}
		if r.Count > 0 && in.fired[ri] >= r.Count {
			continue
		}
		if r.From > 0 && n < r.From {
			continue
		}
		if r.Until > 0 && n >= r.Until {
			continue
		}
		if r.Nth > 0 {
			if n != r.Nth {
				continue
			}
		} else if rand01(in.seed, uint64(point), hashLabel(label), n, uint64(ri)) >= r.Prob {
			continue
		}
		in.fired[ri]++
		arg := splitmix64(in.seed ^ splitmix64(uint64(point)<<32^hashLabel(label)^splitmix64(n)))
		f = Fault{Kind: r.Kind, Delay: r.Delay, Arg: arg}
		break
	}
	in.mu.Unlock()
	if f.Kind != KindNone {
		in.count(f.Kind)
	}
	return f
}

// count records one injected fault of the given kind (also used by
// harnesses that perform scheduled crashes themselves).
func (in *Injector) count(k Kind) {
	in.total[k].Add(1)
	in.injected[k].Add(1)
}

// CountCrash records one scheduled node crash against this injector's
// counters. Nil-safe.
func (in *Injector) CountCrash() {
	if in == nil {
		return
	}
	in.count(KindCrash)
}

// Counts returns how many faults of each kind have been injected.
func (in *Injector) Counts() map[Kind]int64 {
	out := make(map[Kind]int64)
	if in == nil {
		return out
	}
	for k := KindReset; k < numKinds; k++ {
		if v := in.total[k].Load(); v != 0 {
			out[k] = v
		}
	}
	return out
}

// splitmix64 is the same finalizer the engines use for hashing: a
// high-quality, dependency-free mix whose output is a pure function of its
// input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashLabel folds a label into the decision hash (FNV-1a).
func hashLabel(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rand01 maps the decision coordinates to a uniform [0,1) value.
func rand01(seed, point, label, n, rule uint64) float64 {
	x := splitmix64(seed ^ splitmix64(point^splitmix64(label^splitmix64(n^splitmix64(rule)))))
	return float64(x>>11) / float64(1<<53)
}

// CrashSchedule deterministically assigns each of nodes crash points:
// perNode distinct batches in [1, batches-1] per node, derived from seed
// alone. The result maps batch -> node indexes to crash just before that
// batch's pull phase (sorted, so the harness kills them in a fixed order).
// Batch 0 is excluded so every run performs at least one full batch.
func CrashSchedule(seed uint64, nodes, batches, perNode int) map[int64][]int {
	out := make(map[int64][]int)
	if batches < 2 || perNode <= 0 {
		return out
	}
	span := uint64(batches - 1) // candidate batches 1..batches-1
	if uint64(perNode) > span {
		perNode = int(span)
	}
	for node := 0; node < nodes; node++ {
		chosen := make(map[int64]bool, perNode)
		for attempt := uint64(0); len(chosen) < perNode; attempt++ {
			b := int64(splitmix64(seed^splitmix64(uint64(node)<<32^attempt))%span) + 1
			if !chosen[b] {
				chosen[b] = true
				out[b] = append(out[b], node)
			}
		}
	}
	for _, ns := range out {
		// insertion sort: lists are tiny and package stays dependency-light
		for i := 1; i < len(ns); i++ {
			for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
	}
	return out
}
