package faultinject

import (
	"errors"
	"net"
	"testing"
	"time"
)

// Gray-failure fault model tests (DESIGN.md §16): partitions surface as
// timeouts, slow links delay without failing, and occurrence windows give
// deterministic partition start/heal points.

func TestPartitionWriteIsTimeout(t *testing.T) {
	in := New(1, Rule{Point: PointConnWrite, Label: "w", Kind: KindPartition, Nth: 1})
	a, b := net.Pipe()
	defer b.Close()
	w := in.WrapConn(a, "w")
	_, err := w.Write([]byte("hello"))
	if err == nil {
		t.Fatal("partitioned write succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partition err = %v, want net.Error with Timeout()=true", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partition err = %v, want errors.Is(ErrInjected)", err)
	}
	// The conn is closed: silent loss means the framing is unrecoverable,
	// exactly like a real blown deadline.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn still open after partition")
	}
	if got := in.Counts()[KindPartition]; got != 1 {
		t.Fatalf("partition count = %d, want 1", got)
	}
}

func TestPartitionReadIsTimeout(t *testing.T) {
	in := New(1, Rule{Point: PointConnRead, Label: "r", Kind: KindPartition, Nth: 1})
	a, b := net.Pipe()
	defer b.Close()
	r := in.WrapConn(a, "r")
	_, err := r.Read(make([]byte, 8))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partitioned read err = %v, want timeout-flavored", err)
	}
}

func TestOccurrenceWindow(t *testing.T) {
	// From 3, Until 6: fires exactly at occurrences 3, 4, 5 (1-based,
	// Until exclusive) — a deterministic partition with start and heal.
	in := New(1, Rule{Point: PointConnWrite, Label: "x", Kind: KindReset, Prob: 1, From: 3, Until: 6})
	for i := 1; i <= 10; i++ {
		f := in.On(PointConnWrite, "x")
		want := i >= 3 && i < 6
		if (f.Kind == KindReset) != want {
			t.Fatalf("occurrence %d: fired=%v, want %v", i, f.Kind == KindReset, want)
		}
	}
}

func TestOccurrenceWindowUnbounded(t *testing.T) {
	// Until 0 never heals: a hard partition from occurrence 4 onward.
	in := New(1, Rule{Point: PointConnWrite, Label: "x", Kind: KindPartition, Prob: 1, From: 4})
	for i := 1; i <= 8; i++ {
		f := in.On(PointConnWrite, "x")
		if (f.Kind == KindPartition) != (i >= 4) {
			t.Fatalf("occurrence %d: kind %v", i, f.Kind)
		}
	}
}

func TestWindowsArePerLabel(t *testing.T) {
	// Each (point, label) stream numbers its own occurrences, so a window
	// partitions one peer without perturbing another's schedule.
	in := New(1, Rule{Point: PointConnWrite, Label: "node1", Kind: KindPartition, Prob: 1, From: 2, Until: 3})
	if f := in.On(PointConnWrite, "node0"); f.Kind != KindNone {
		t.Fatalf("node0 occurrence 1 fired %v", f.Kind)
	}
	if f := in.On(PointConnWrite, "node1"); f.Kind != KindNone {
		t.Fatalf("node1 occurrence 1 fired %v (window starts at 2)", f.Kind)
	}
	if f := in.On(PointConnWrite, "node1"); f.Kind != KindPartition {
		t.Fatalf("node1 occurrence 2 = %v, want partition", f.Kind)
	}
	if f := in.On(PointConnWrite, "node0"); f.Kind != KindNone {
		t.Fatalf("node0 occurrence 2 fired %v (rule is node1-scoped)", f.Kind)
	}
}

// recordClock captures Advance calls without sleeping.
type recordClock struct{ advanced []time.Duration }

func (c *recordClock) Advance(d time.Duration) time.Duration {
	c.advanced = append(c.advanced, d)
	var sum time.Duration
	for _, a := range c.advanced {
		sum += a
	}
	return sum
}

func TestSleepRoutesToVirtualClock(t *testing.T) {
	in := New(1)
	clk := &recordClock{}
	in.SetClock(clk)
	start := time.Now()
	in.Sleep(5 * time.Second) // would hang the test if it slept wall time
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("Sleep blocked %v of wall time despite virtual clock", wall)
	}
	if len(clk.advanced) != 1 || clk.advanced[0] != 5*time.Second {
		t.Fatalf("clock advances = %v, want [5s]", clk.advanced)
	}
}

func TestInjectedDelayUsesVirtualClock(t *testing.T) {
	// A KindSlow link delay on the conn wrapper advances the virtual
	// clock instead of stalling the wall clock, so partition soaks with
	// slow links stay fast.
	in := New(1, Rule{Point: PointConnWrite, Label: "s", Kind: KindSlow, Prob: 1, Delay: 3 * time.Second})
	clk := &recordClock{}
	in.SetClock(clk)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() { b.Read(make([]byte, 16)) }()
	w := in.WrapConn(a, "s")
	start := time.Now()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("slow write failed: %v (slow delays, it must not fail)", err)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("slow write blocked %v of wall time", wall)
	}
	if len(clk.advanced) != 1 || clk.advanced[0] != 3*time.Second {
		t.Fatalf("clock advances = %v, want [3s]", clk.advanced)
	}
	if got := in.Counts()[KindSlow]; got != 1 {
		t.Fatalf("slow count = %d, want 1", got)
	}
}

func TestPartitionDeterministicAcrossRuns(t *testing.T) {
	// The same seed and rule set yields the same partition schedule: the
	// windowed rule composes with a probabilistic one and both replay.
	run := func() []Kind {
		in := New(42,
			Rule{Point: PointConnWrite, Label: "n", Kind: KindPartition, Prob: 1, From: 5, Until: 9},
			Rule{Point: PointConnWrite, Label: "n", Kind: KindReset, Prob: 0.3},
		)
		var kinds []Kind
		for i := 0; i < 32; i++ {
			kinds = append(kinds, in.On(PointConnWrite, "n").Kind)
		}
		return kinds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occurrence %d: run1 %v, run2 %v (schedule must replay)", i+1, a[i], b[i])
		}
	}
	fired := false
	for i := 4; i < 8; i++ {
		if a[i] == KindPartition {
			fired = true
		}
	}
	if !fired {
		t.Fatal("windowed partition rule never fired inside its window")
	}
}
