package faultinject

import (
	"fmt"
	"net"
	"time"
)

// WrapConn wraps a connection so reads and writes consult the injector
// under the given stream label. A nil injector returns conn unchanged, so
// the fault-free path has no wrapper at all.
func (in *Injector) WrapConn(conn net.Conn, label string) net.Conn {
	if in == nil {
		return conn
	}
	return &faultConn{Conn: conn, in: in, label: label}
}

type faultConn struct {
	net.Conn
	in    *Injector
	label string
}

func (c *faultConn) errf(kind Kind, op string) error {
	return fmt.Errorf("%w: %s during %s on %s", ErrInjected, kind, op, c.label)
}

// Read consults the injector: KindReset closes the connection and fails the
// read; KindDelay sleeps first. Torn/drop are write-side faults and are
// treated as resets if a rule targets reads with them.
func (c *faultConn) Read(p []byte) (int, error) {
	switch f := c.in.On(PointConnRead, c.label); f.Kind {
	case KindNone:
	case KindDelay:
		time.Sleep(f.Delay)
	default:
		c.Conn.Close()
		return 0, c.errf(f.Kind, "read")
	}
	return c.Conn.Read(p)
}

// Write consults the injector. KindTorn writes a strict prefix of p before
// closing, so the peer observes a mid-frame failure; KindDrop discards the
// bytes while reporting success and then closes, so a response the server
// fully processed never arrives; KindReset closes immediately.
func (c *faultConn) Write(p []byte) (int, error) {
	switch f := c.in.On(PointConnWrite, c.label); f.Kind {
	case KindNone:
	case KindDelay:
		time.Sleep(f.Delay)
	case KindTorn:
		n := len(p) / 2
		if n > 0 {
			c.Conn.Write(p[:n])
		}
		c.Conn.Close()
		return n, c.errf(KindTorn, "write")
	case KindDrop:
		c.Conn.Close()
		return len(p), nil
	default:
		c.Conn.Close()
		return 0, c.errf(f.Kind, "write")
	}
	return c.Conn.Write(p)
}
