package faultinject

import (
	"fmt"
	"net"
)

// WrapConn wraps a connection so reads and writes consult the injector
// under the given stream label. A nil injector returns conn unchanged, so
// the fault-free path has no wrapper at all.
func (in *Injector) WrapConn(conn net.Conn, label string) net.Conn {
	if in == nil {
		return conn
	}
	return &faultConn{Conn: conn, in: in, label: label}
}

type faultConn struct {
	net.Conn
	in    *Injector
	label string
}

func (c *faultConn) errf(kind Kind, op string) error {
	return fmt.Errorf("%w: %s during %s on %s", ErrInjected, kind, op, c.label)
}

// Read consults the injector: KindReset closes the connection and fails the
// read; KindDelay and KindSlow sleep first (virtual time when a clock is
// attached); KindPartition fails as a timeout — the bytes never arrive.
// Torn/drop are write-side faults and are treated as resets if a rule
// targets reads with them.
func (c *faultConn) Read(p []byte) (int, error) {
	switch f := c.in.On(PointConnRead, c.label); f.Kind {
	case KindNone:
	case KindDelay, KindSlow:
		c.in.Sleep(f.Delay)
	case KindPartition:
		c.Conn.Close()
		return 0, PartitionError(c.errf(KindPartition, "read"))
	default:
		c.Conn.Close()
		return 0, c.errf(f.Kind, "read")
	}
	return c.Conn.Read(p)
}

// Write consults the injector. KindTorn writes a strict prefix of p before
// closing, so the peer observes a mid-frame failure; KindDrop discards the
// bytes while reporting success and then closes, so a response the server
// fully processed never arrives; KindReset closes immediately.
func (c *faultConn) Write(p []byte) (int, error) {
	switch f := c.in.On(PointConnWrite, c.label); f.Kind {
	case KindNone:
	case KindDelay, KindSlow:
		c.in.Sleep(f.Delay)
	case KindPartition:
		c.Conn.Close()
		return 0, PartitionError(c.errf(KindPartition, "write"))
	case KindTorn:
		n := len(p) / 2
		if n > 0 {
			c.Conn.Write(p[:n])
		}
		c.Conn.Close()
		return n, c.errf(KindTorn, "write")
	case KindDrop:
		c.Conn.Close()
		return len(p), nil
	default:
		c.Conn.Close()
		return 0, c.errf(f.Kind, "write")
	}
	return c.Conn.Write(p)
}

// partitionErr wraps an injected-partition failure so it satisfies
// net.Error with Timeout() true: an asymmetric partition is silent loss,
// and silent loss surfaces to the caller as a deadline expiry, never as a
// connection reset. Modeling it as an *instant* timeout keeps partition
// soaks fast while exercising exactly the timeout-classification path a
// real partition would.
type partitionErr struct{ err error }

func (e *partitionErr) Error() string   { return e.err.Error() }
func (e *partitionErr) Timeout() bool   { return true }
func (e *partitionErr) Temporary() bool { return true }
func (e *partitionErr) Unwrap() error   { return e.err }

// PartitionError wraps err so it reads as a network timeout (net.Error
// with Timeout() true) while still matching ErrInjected via errors.Is.
func PartitionError(err error) error { return &partitionErr{err: err} }
