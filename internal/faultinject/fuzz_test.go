package faultinject

import (
	"testing"
)

// FuzzFaultSchedule replays arbitrary seeds and rule parameters through the
// injector twice and asserts the decision streams are identical — the
// replay-exactness property every chaos test depends on — and that
// CrashSchedule stays in bounds and deterministic. A failure prints the
// fuzz inputs, which ARE the reproducing seed.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), 0.1, uint64(3), 3, 10, 2)
	f.Add(uint64(42), 0.9, uint64(0), 5, 2, 1)
	f.Add(uint64(0), 0.0, uint64(1), 1, 100, 7)
	f.Fuzz(func(t *testing.T, seed uint64, prob float64, nth uint64, nodes, batches, perNode int) {
		if nodes < 0 || nodes > 16 || batches < 0 || batches > 1<<12 || perNode < 0 || perNode > 1<<8 {
			t.Skip("out of modeled range")
		}
		rules := []Rule{
			{Point: PointConnWrite, Kind: KindReset, Prob: prob, Nth: nth},
			{Point: PointConnRead, Label: "n1", Kind: KindDrop, Prob: 1 - prob},
			{Point: PointDial, Kind: KindTorn, Prob: prob / 2, Count: 3},
		}
		run := func() []Kind {
			in := New(seed, rules...)
			var out []Kind
			for i := 0; i < 64; i++ {
				out = append(out, in.On(PointConnWrite, "n0").Kind)
				out = append(out, in.On(PointConnRead, "n1").Kind)
				out = append(out, in.On(PointDial, "n0").Kind)
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay length mismatch", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: decision %d not replayable: %v vs %v", seed, i, a[i], b[i])
			}
		}

		s1 := CrashSchedule(seed, nodes, batches, perNode)
		s2 := CrashSchedule(seed, nodes, batches, perNode)
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: CrashSchedule not deterministic", seed)
		}
		for batch, ns := range s1 {
			if batch < 1 || batch >= int64(batches) {
				t.Fatalf("seed %d: crash at out-of-range batch %d of %d", seed, batch, batches)
			}
			o := s2[batch]
			if len(o) != len(ns) {
				t.Fatalf("seed %d: CrashSchedule batch %d differs", seed, batch)
			}
			for i, n := range ns {
				if n < 0 || n >= nodes {
					t.Fatalf("seed %d: crash for out-of-range node %d", seed, n)
				}
				if o[i] != n {
					t.Fatalf("seed %d: CrashSchedule batch %d differs", seed, batch)
				}
			}
		}
	})
}
