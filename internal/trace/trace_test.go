package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"openembedding/internal/obs"
)

func TestRecorderEventsSorted(t *testing.T) {
	var r Recorder
	r.Record(5*time.Millisecond, Push, 0, 10)
	r.Record(1*time.Millisecond, Pull, 0, 10)
	r.Record(3*time.Millisecond, Pull, 0, 5)
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatal("events not sorted by time")
		}
	}
}

func TestPerMillisecond(t *testing.T) {
	var r Recorder
	r.Record(0, Pull, 0, 100)
	r.Record(500*time.Microsecond, Pull, 0, 50) // same ms bucket
	r.Record(2*time.Millisecond, Push, 0, 150)
	buckets := r.PerMillisecond()
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Pulls != 150 || buckets[0].Pushes != 0 {
		t.Fatalf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Pulls != 0 || buckets[1].Pushes != 0 {
		t.Fatalf("bucket 1 not idle: %+v", buckets[1])
	}
	if buckets[2].Pushes != 150 {
		t.Fatalf("bucket 2 = %+v", buckets[2])
	}
}

func TestPerMillisecondEmpty(t *testing.T) {
	var r Recorder
	if got := r.PerMillisecond(); got != nil {
		t.Fatalf("empty recorder buckets = %v", got)
	}
}

func TestPairCounts(t *testing.T) {
	var r Recorder
	r.Record(0, Pull, 0, 7)
	r.Record(time.Millisecond, Push, 0, 7)
	r.Record(2*time.Millisecond, Pull, 1, 3)
	pulls, pushes := r.PairCounts()
	if pulls != 10 || pushes != 7 {
		t.Fatalf("pulls=%d pushes=%d", pulls, pushes)
	}
}

func TestBatchSpan(t *testing.T) {
	var r Recorder
	r.Record(2*time.Millisecond, Pull, 5, 1)
	r.Record(9*time.Millisecond, Push, 5, 1)
	r.Record(4*time.Millisecond, Pull, 6, 1)
	first, last, ok := r.BatchSpan(5)
	if !ok || first != 2*time.Millisecond || last != 9*time.Millisecond {
		t.Fatalf("span = %v..%v ok=%v", first, last, ok)
	}
	if _, _, ok := r.BatchSpan(99); ok {
		t.Fatal("missing batch found")
	}
}

// TestSharedTracer checks a Recorder layered on a shared obs.Tracer: psreq
// events land in the same ring as foreign spans, Events filters to psreq
// only, and the merged ring dumps as one Chrome trace.
func TestSharedTracer(t *testing.T) {
	tr := obs.NewTracer(64)
	r := NewRecorder(tr)
	r.Record(time.Millisecond, Pull, 3, 42)
	tr.Emit(obs.SpanRecord{Name: "maint.drain", Cat: "engine", Batch: 3, Start: 2 * time.Millisecond})
	r.Record(3*time.Millisecond, Push, 3, 42)

	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2 (engine span must be filtered)", len(ev))
	}
	if ev[0].Op != Pull || ev[0].Requests != 42 || ev[0].Batch != 3 {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].Op != Push {
		t.Fatalf("event 1 = %+v", ev[1])
	}
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("shared ring holds %d spans, want 3", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("chrome trace has %d events, want 3", len(doc.TraceEvents))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(time.Duration(j)*time.Millisecond, Pull, int64(i), 1)
			}
		}(i)
	}
	wg.Wait()
	if got := len(r.Events()); got != 800 {
		t.Fatalf("events = %d", got)
	}
}
