// Package trace records parameter-server access events on the virtual
// timeline, reproducing the paper's workload analyses: the per-millisecond
// request counting of Fig. 2 (paired pull/update bursts at batch
// boundaries) and the access-frequency statistics behind Table II.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Op is the request kind.
type Op int

// Request kinds.
const (
	Pull Op = iota
	Push
)

// Event is one batched request arrival: n embedding-entry accesses of one
// kind at one virtual instant.
type Event struct {
	At       time.Duration
	Op       Op
	Requests int
	Batch    int64
}

// Recorder accumulates events; it is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends one event.
func (r *Recorder) Record(at time.Duration, op Op, batch int64, requests int) {
	r.mu.Lock()
	r.events = append(r.events, Event{At: at, Op: op, Requests: requests, Batch: batch})
	r.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MsBucket is one millisecond of the Fig. 2 timeline.
type MsBucket struct {
	Ms     int
	Pulls  int
	Pushes int
}

// PerMillisecond buckets the recorded requests per virtual millisecond,
// the series Fig. 2 plots.
func (r *Recorder) PerMillisecond() []MsBucket {
	events := r.Events()
	if len(events) == 0 {
		return nil
	}
	last := int(events[len(events)-1].At / time.Millisecond)
	buckets := make([]MsBucket, last+1)
	for i := range buckets {
		buckets[i].Ms = i
	}
	for _, e := range events {
		b := &buckets[int(e.At/time.Millisecond)]
		if e.Op == Pull {
			b.Pulls += e.Requests
		} else {
			b.Pushes += e.Requests
		}
	}
	return buckets
}

// PairCounts returns total pull and push accesses — equal totals are the
// paper's "burst I/O in pairs" observation.
func (r *Recorder) PairCounts() (pulls, pushes int64) {
	for _, e := range r.Events() {
		if e.Op == Pull {
			pulls += int64(e.Requests)
		} else {
			pushes += int64(e.Requests)
		}
	}
	return
}

// BatchSpan reports the first and last event time of a batch, or ok=false
// if the batch was never recorded.
func (r *Recorder) BatchSpan(batch int64) (first, last time.Duration, ok bool) {
	for _, e := range r.Events() {
		if e.Batch != batch {
			continue
		}
		if !ok || e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
		ok = true
	}
	return
}
