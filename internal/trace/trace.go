// Package trace records parameter-server access events on the virtual
// timeline, reproducing the paper's workload analyses: the per-millisecond
// request counting of Fig. 2 (paired pull/update bursts at batch
// boundaries) and the access-frequency statistics behind Table II.
//
// Since the obs subsystem landed, the Recorder is a thin veneer over an
// obs.Tracer ring: each access event becomes a point span (Cat "psreq") on
// the same timeline engine and cluster spans use, so one trace — dumpable as
// Chrome trace_event JSON via obs — is the single source of truth for both
// the Fig. 2 tables and span-level debugging.
package trace

import (
	"sort"
	"sync"
	"time"

	"openembedding/internal/obs"
)

// psreqCat is the span category carrying access events; Events filters on
// it, so psreq events coexist with engine/cluster spans in a shared tracer.
const psreqCat = "psreq"

// recorderCapacity bounds a Recorder-owned ring. Virtual-time experiments
// emit two events per batch, so this covers ~500k batches — far beyond any
// experiment in this repo — before the oldest events drop.
const recorderCapacity = 1 << 20

// Op is the request kind.
type Op int

// Request kinds.
const (
	Pull Op = iota
	Push
)

func (o Op) spanName() string {
	if o == Pull {
		return "pull"
	}
	return "push"
}

// Event is one batched request arrival: n embedding-entry accesses of one
// kind at one virtual instant.
//
// Deprecated: Event remains the accessor type for the Fig. 2 analyses, but
// new instrumentation should emit obs.SpanRecord values (via Recorder.Tracer
// or a shared obs.Tracer) instead of inventing parallel time.Duration event
// types; one timeline, one dump format.
type Event struct {
	At       time.Duration
	Op       Op
	Requests int
	Batch    int64
}

// Recorder accumulates events; it is safe for concurrent use. The zero
// value is ready: it lazily creates a private obs.Tracer ring. Use
// NewRecorder to share a tracer with other span sources.
type Recorder struct {
	once sync.Once
	t    *obs.Tracer
}

// NewRecorder returns a Recorder that records into t, so access events and
// wall-clock spans share one ring. A nil t behaves like the zero Recorder.
func NewRecorder(t *obs.Tracer) *Recorder {
	r := &Recorder{}
	if t != nil {
		r.once.Do(func() {})
		r.t = t
	}
	return r
}

// Tracer returns the underlying span ring (creating it on first use), for
// merging into obs exports such as the Chrome trace dump.
func (r *Recorder) Tracer() *obs.Tracer {
	r.once.Do(func() { r.t = obs.NewTracer(recorderCapacity) })
	return r.t
}

// Record appends one event at virtual instant `at`.
func (r *Recorder) Record(at time.Duration, op Op, batch int64, requests int) {
	r.Tracer().Emit(obs.SpanRecord{
		Name:  op.spanName(),
		Cat:   psreqCat,
		Batch: batch,
		Arg:   int64(requests),
		ArgN:  "requests",
		Start: at,
	})
}

// Events returns a copy of the recorded access events sorted by time. Spans
// from other categories sharing the tracer are ignored.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, s := range r.Tracer().Spans() {
		if s.Cat != psreqCat {
			continue
		}
		op := Pull
		if s.Name == Push.spanName() {
			op = Push
		}
		out = append(out, Event{At: s.Start, Op: op, Requests: int(s.Arg), Batch: s.Batch})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MsBucket is one millisecond of the Fig. 2 timeline.
type MsBucket struct {
	Ms     int
	Pulls  int
	Pushes int
}

// PerMillisecond buckets the recorded requests per virtual millisecond,
// the series Fig. 2 plots.
func (r *Recorder) PerMillisecond() []MsBucket {
	events := r.Events()
	if len(events) == 0 {
		return nil
	}
	last := int(events[len(events)-1].At / time.Millisecond)
	buckets := make([]MsBucket, last+1)
	for i := range buckets {
		buckets[i].Ms = i
	}
	for _, e := range events {
		b := &buckets[int(e.At/time.Millisecond)]
		if e.Op == Pull {
			b.Pulls += e.Requests
		} else {
			b.Pushes += e.Requests
		}
	}
	return buckets
}

// PairCounts returns total pull and push accesses — equal totals are the
// paper's "burst I/O in pairs" observation.
func (r *Recorder) PairCounts() (pulls, pushes int64) {
	for _, e := range r.Events() {
		if e.Op == Pull {
			pulls += int64(e.Requests)
		} else {
			pushes += int64(e.Requests)
		}
	}
	return
}

// BatchSpan reports the first and last event time of a batch, or ok=false
// if the batch was never recorded.
func (r *Recorder) BatchSpan(batch int64) (first, last time.Duration, ok bool) {
	for _, e := range r.Events() {
		if e.Batch != batch {
			continue
		}
		if !ok || e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
		ok = true
	}
	return
}
