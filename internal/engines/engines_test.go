// Package engines_test runs conformance tests across every storage engine:
// the proposed PMem-OE engine and the DRAM-PS / Ori-Cache / PMem-Hash
// baselines must be functionally interchangeable — same pulls, same pushed
// state — differing only in cost profile.
package engines_test

import (
	"math/rand"
	"testing"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/engines/dramps"
	"openembedding/internal/engines/oricache"
	"openembedding/internal/engines/pmemhash"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

func baseConfig() psengine.Config {
	return psengine.Config{
		Dim:          8,
		Optimizer:    optim.NewAdaGrad(0.1),
		Capacity:     512,
		CacheEntries: 32,
		Meter:        simclock.NewMeter(),
	}
}

func newArena(t *testing.T, cfg psengine.Config) *pmem.Arena {
	t.Helper()
	cfg = cfg.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	slots := cfg.Capacity * 4
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(cfg.Meter))
	a, err := pmem.NewArena(dev, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// buildAll returns one instance of every engine under the same config.
func buildAll(t *testing.T) map[string]psengine.Engine {
	t.Helper()
	out := make(map[string]psengine.Engine)

	cfg := baseConfig()
	oe, err := core.New(cfg, newArena(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	out["pmem-oe"] = oe

	cfg = baseConfig()
	dp, err := dramps.New(cfg, dramps.Options{CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	out["dram-ps"] = dp

	cfg = baseConfig()
	oc, err := oricache.New(cfg, newArena(t, cfg), oricache.Options{CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	out["ori-cache"] = oc

	cfg = baseConfig()
	ph, err := pmemhash.New(cfg, newArena(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	out["pmem-hash"] = ph

	t.Cleanup(func() {
		for _, e := range out {
			e.Close()
		}
	})
	return out
}

func driveBatch(t *testing.T, e psengine.Engine, batch int64, keys []uint64, grads []float32) []float32 {
	t.Helper()
	dst := make([]float32, len(keys)*e.Dim())
	if err := e.Pull(batch, keys, dst); err != nil {
		t.Fatalf("%s pull: %v", e.Name(), err)
	}
	e.EndPullPhase(batch)
	e.WaitMaintenance()
	if grads != nil {
		if err := e.Push(batch, keys, grads); err != nil {
			t.Fatalf("%s push: %v", e.Name(), err)
		}
	}
	if err := e.EndBatch(batch); err != nil {
		t.Fatalf("%s end batch: %v", e.Name(), err)
	}
	return dst
}

// TestEnginesAgree drives an identical skewed workload through every engine
// and requires bit-identical pulls at every batch.
func TestEnginesAgree(t *testing.T) {
	engines := buildAll(t)
	rng := rand.New(rand.NewSource(99))
	dim := 8

	for b := int64(0); b < 25; b++ {
		// Skewed key mix: a few hot keys plus a random cold tail, deduped.
		seen := map[uint64]bool{}
		var keys []uint64
		for _, k := range []uint64{1, 2, uint64(rng.Intn(200)), uint64(rng.Intn(200)), uint64(200 + rng.Intn(100))} {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		grads := make([]float32, len(keys)*dim)
		for i := range grads {
			grads[i] = float32(rng.NormFloat64())
		}

		var ref []float32
		var refName string
		for name, e := range engines {
			got := driveBatch(t, e, b, keys, grads)
			if ref == nil {
				ref, refName = got, name
				continue
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("batch %d: %s[%d]=%v disagrees with %s=%v", b, name, i, got[i], refName, ref[i])
				}
			}
		}
	}
}

// TestEnginesCheckpointAndObserve verifies the checkpoint API on every
// engine that supports it.
func TestEnginesCheckpointAndObserve(t *testing.T) {
	engines := buildAll(t)
	keys := []uint64{1, 2, 3}
	grads := make([]float32, len(keys)*8)
	for name, e := range engines {
		for b := int64(0); b < 3; b++ {
			driveBatch(t, e, b, keys, grads)
		}
		if err := e.RequestCheckpoint(2); err != nil {
			t.Fatalf("%s: request checkpoint: %v", name, err)
		}
		// One more batch lets asynchronous engines complete.
		driveBatch(t, e, 3, keys, grads)
		if got := e.CompletedCheckpoint(); got != 2 {
			t.Fatalf("%s: completed checkpoint = %d, want 2", name, got)
		}
	}
}

// TestDRAMPSRestore checks the incremental checkpoint chain round-trips.
func TestDRAMPSRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig()
	e, err := dramps.New(cfg, dramps.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{10, 20, 30}
	grads := make([]float32, len(keys)*8)
	for i := range grads {
		grads[i] = 0.5
	}
	var want []float32
	for b := int64(0); b < 6; b++ {
		driveBatch(t, e, b, keys, grads)
		if b == 2 || b == 5 {
			if err := e.RequestCheckpoint(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	want = driveBatch(t, e, 6, keys, nil) // state after batch 5
	e.Close()

	re, newest, err := dramps.Restore(cfg, dramps.Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if newest != 5 {
		t.Fatalf("restored to batch %d, want 5", newest)
	}
	got := driveBatch(t, re, 6, keys, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestOriCacheEvictionPressure exercises the inline writeback path with a
// cache far smaller than the key space.
func TestOriCacheEvictionPressure(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheEntries = 4
	e, err := oricache.New(cfg, newArena(t, cfg), oricache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// First pass records the post-push state of each key.
	saved := map[uint64][]float32{}
	grad := make([]float32, 8)
	for i := range grad {
		grad[i] = 1
	}
	for k := uint64(0); k < 32; k++ {
		driveBatch(t, e, int64(k), []uint64{k}, grad)
	}
	for k := uint64(0); k < 32; k++ {
		saved[k] = driveBatch(t, e, int64(100+k), []uint64{k}, nil)
	}
	st := e.Stats()
	if st.Evictions == 0 || st.PMemWrites == 0 || st.Misses == 0 {
		t.Fatalf("no eviction traffic: %+v", st)
	}
	// Values stable across another eviction cycle.
	for k := uint64(0); k < 32; k++ {
		got := driveBatch(t, e, int64(200+k), []uint64{k}, nil)
		for i := range got {
			if got[i] != saved[k][i] {
				t.Fatalf("key %d changed across eviction: %v vs %v", k, got[i], saved[k][i])
			}
		}
	}
}

// TestPMemHashPersistsEveryUpdate verifies PMem-Hash's defining property:
// after every batch the newest state is already durable.
func TestPMemHashPersistsEveryUpdate(t *testing.T) {
	cfg := baseConfig()
	arena := newArena(t, cfg)
	e, err := pmemhash.New(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{7}
	grad := make([]float32, 8)
	for i := range grad {
		grad[i] = 1
	}
	want := driveBatch(t, e, 0, keys, grad)
	_ = want
	after := driveBatch(t, e, 1, keys, nil)
	e.Close()

	// Crash without any checkpoint: the record must still hold the
	// post-batch-0 state (PMem-Hash persists in place).
	arena.Device().Crash()
	re, err := pmemhash.New(cfg, mustOpenArena(t, arena))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_ = re
	// Read the raw record back.
	found := false
	reopened := mustOpenArena(t, arena)
	reopened.Scan(func(r pmem.Record) error {
		if r.Key == 7 {
			found = true
			got := make([]float32, len(after))
			pmem.DecodeFloats(got, r.Payload[:4*len(after)])
			for i := range after {
				if got[i] != after[i] {
					t.Fatalf("durable[%d] = %v, want %v", i, got[i], after[i])
				}
			}
		}
		return nil
	})
	if !found {
		t.Fatal("record for key 7 not durable after crash")
	}
}

func mustOpenArena(t *testing.T, a *pmem.Arena) *pmem.Arena {
	t.Helper()
	re, err := pmem.OpenArena(a.Device())
	if err != nil {
		t.Fatal(err)
	}
	return re
}

// TestEngineCostProfiles sanity-checks the virtual cost shapes the
// simulator depends on: PMem-Hash must charge far more PMem time than
// DRAM-PS (which charges none), and Ori-Cache must charge PMem time on the
// request path while PMem-OE's shows up in maintenance.
func TestEngineCostProfiles(t *testing.T) {
	engines := buildAll(t)
	meters := map[string]*simclock.Meter{}
	// Rebuild with per-engine meters for isolation.
	_ = engines

	run := func(name string, build func(cfg psengine.Config) psengine.Engine) simclock.Snapshot {
		cfg := baseConfig()
		cfg.CacheEntries = 8
		meters[name] = cfg.Meter
		e := build(cfg)
		defer e.Close()
		rng := rand.New(rand.NewSource(5))
		grads := make([]float32, 4*8)
		for b := int64(0); b < 20; b++ {
			keys := []uint64{uint64(rng.Intn(64)), uint64(64 + rng.Intn(64)), uint64(128 + rng.Intn(64)), uint64(192 + rng.Intn(64))}
			driveBatch(t, e, b, keys, grads)
		}
		return cfg.Meter.Snapshot()
	}

	dramSnap := run("dram-ps", func(cfg psengine.Config) psengine.Engine {
		e, err := dramps.New(cfg, dramps.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
	oeSnap := run("pmem-oe", func(cfg psengine.Config) psengine.Engine {
		e, err := core.New(cfg, newArena(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
	phSnap := run("pmem-hash", func(cfg psengine.Config) psengine.Engine {
		e, err := pmemhash.New(cfg, newArena(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		return e
	})

	if got := dramSnap.Total(simclock.PMemRead) + dramSnap.Total(simclock.PMemWrite); got != 0 {
		t.Fatalf("DRAM-PS charged PMem time: %v", got)
	}
	oePMem := oeSnap.Sum(simclock.PMemRead, simclock.PMemWrite)
	phPMem := phSnap.Sum(simclock.PMemRead, simclock.PMemWrite)
	if oePMem <= 0 || phPMem <= 0 {
		t.Fatal("PMem engines charged no PMem time")
	}
	if phPMem < 2*oePMem {
		t.Fatalf("PMem-Hash (%v) should charge far more PMem time than PMem-OE (%v)", phPMem, oePMem)
	}
}
