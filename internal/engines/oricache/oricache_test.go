package oricache

import (
	"testing"

	"openembedding/internal/checkpoint"
	"openembedding/internal/device"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

func testEngine(t *testing.T, cacheEntries int, ckptDir string) (*Engine, *simclock.Meter) {
	t.Helper()
	cfg := psengine.Config{
		Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 256,
		CacheEntries: cacheEntries, Meter: simclock.NewMeter(),
	}.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, 256), device.NewTimedPMem(cfg.Meter))
	arena, err := pmem.NewArena(dev, payload, 256)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg, arena, Options{CheckpointDir: ckptDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, cfg.Meter
}

// TestPushReordersLRU pins the black-box behaviour the paper critiques:
// pushes count as cache accesses and reorder the LRU, unlike PMem-OE.
func TestPushReordersLRU(t *testing.T) {
	e, _ := testEngine(t, 2, "")
	dst := make([]float32, 4)
	grads := []float32{1, 1, 1, 1}

	// Cache: [2(front), 1].
	if err := e.Pull(0, []uint64{1}, dst); err != nil {
		t.Fatal(err)
	}
	if err := e.Pull(0, []uint64{2}, dst); err != nil {
		t.Fatal(err)
	}
	// Push key 1: in a black-box cache this is an access, so key 1 moves to
	// the front and key 2 becomes the LRU victim.
	if err := e.Push(0, []uint64{1}, grads); err != nil {
		t.Fatal(err)
	}
	if err := e.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	// Insert key 3: evicts key 2 (not key 1).
	if err := e.Pull(1, []uint64{3}, dst); err != nil {
		t.Fatal(err)
	}
	missesBefore := e.Stats().Misses
	// Key 1 still cached (a hit); key 2 must miss.
	if err := e.Pull(1, []uint64{1}, dst); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Misses; got != missesBefore {
		t.Fatalf("key 1 missed (evicted despite push-reorder): misses %d -> %d", missesBefore, got)
	}
	if err := e.Pull(1, []uint64{2}, dst); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Misses; got != missesBefore+1 {
		t.Fatalf("key 2 did not miss: misses %d -> %d", missesBefore, got)
	}
}

// TestGlobalSyncCharged: Ori-Cache's list lock charges the
// globally-serialized category — the cost class that degrades with GPUs.
func TestGlobalSyncCharged(t *testing.T) {
	e, m := testEngine(t, 8, "")
	dst := make([]float32, 8)
	if err := e.Pull(0, []uint64{1, 2}, dst); err != nil {
		t.Fatal(err)
	}
	if m.Ops(simclock.GlobalSync) < 2 {
		t.Fatalf("GlobalSync ops = %d, want one per access", m.Ops(simclock.GlobalSync))
	}
}

// TestCheckpointIncludesEvictedDirtyEntries: an entry dirtied, then evicted
// to PMem before the checkpoint, must still appear in the delta.
func TestCheckpointIncludesEvictedDirtyEntries(t *testing.T) {
	dir := t.TempDir()
	e, _ := testEngine(t, 1, dir) // cache of one: constant eviction
	dst := make([]float32, 4)
	grads := []float32{1, 1, 1, 1}
	for _, k := range []uint64{1, 2, 3} {
		if err := e.Pull(0, []uint64{k}, dst); err != nil {
			t.Fatal(err)
		}
		if err := e.Push(0, []uint64{k}, grads); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	delta, err := checkpoint.ReadDelta(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 3 {
		t.Fatalf("delta has %d entries, want all 3 dirtied keys", len(delta))
	}
	// Values must be the post-push values even for evicted entries.
	for _, ent := range delta {
		want := make([]float32, 4)
		psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1)}.WithDefaults().Initializer(ent.Key, want)
		if ent.Payload[0] != want[0]-0.1 {
			t.Fatalf("key %d payload %v, want init-0.1", ent.Key, ent.Payload[0])
		}
	}
}

func TestStatsTrackTiers(t *testing.T) {
	e, _ := testEngine(t, 1, "")
	dst := make([]float32, 4)
	for _, k := range []uint64{1, 2, 1} { // 1 is evicted by 2, then re-misses
		if err := e.Pull(0, []uint64{k}, dst); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Entries != 2 || st.Evictions == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CachedEntries != 1 {
		t.Fatalf("cached = %d, want 1", st.CachedEntries)
	}
}
