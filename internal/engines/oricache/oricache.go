// Package oricache implements the paper's Ori-Cache baseline (Table III,
// Observation 1): a generic fine-grained DRAM-PMem cache built the way a
// black-box caching layer would be — a concurrent hash map (Facebook's
// folly map in the paper) plus an LRU list (std::list), with every piece of
// cache maintenance performed inline on the request critical path:
//
//   - the LRU list is reordered on every access, including pushes (the pull
//     and update of a batch are "two independent operations" to the cache);
//   - a cache miss immediately evicts a victim and writes it back to PMem
//     before the request can complete;
//   - checkpointing is the incremental baseline, whose PMem writes contend
//     with training traffic.
//
// Those inline operations are exactly the parallelism overhead that makes
// Ori-Cache degrade as GPU counts (and therefore burst concurrency) grow.
package oricache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/cache"
	"openembedding/internal/checkpoint"
	"openembedding/internal/device"
	"openembedding/internal/obs"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

const numShards = 64

type shard struct {
	mu      sync.RWMutex
	entries map[uint64]*entry
}

type entry struct {
	mu   sync.Mutex
	key  uint64
	buf  []float32 // non-nil while cached in DRAM
	slot uint32    // fixed PMem slot (allocated at creation)
	// dirty means the DRAM copy is newer than the PMem record.
	dirty bool
	node  cache.Node[*entry]
}

// Engine is the Ori-Cache storage engine.
type Engine struct {
	cfg      psengine.Config
	obs      *psengine.EngineObs
	evictObs *obs.Counter // single global LRU, so one shard-0 counter
	arena    *pmem.Arena
	dram     *device.Timed

	shards [numShards]shard

	// lruMu serializes the single LRU list — the std::list analog whose
	// lock every request thread fights for.
	lruMu sync.Mutex
	lru   *cache.List[*entry]

	// dirtyMu guards the dirty-since-last-checkpoint key set used by the
	// incremental checkpointer.
	dirtyMu    sync.Mutex
	dirtySince map[uint64]struct{}

	writer  *checkpoint.Writer
	ckptDev *device.Timed

	entries       atomic.Int64
	hits, misses  atomic.Int64
	evictions     atomic.Int64
	pmemReads     atomic.Int64
	pmemWrites    atomic.Int64
	ckptsDone     atomic.Int64
	completedCkpt atomic.Int64
	lastEnded     atomic.Int64
	closed        atomic.Bool
}

// Options configures Ori-Cache beyond psengine.Config.
type Options struct {
	// CheckpointDir receives incremental checkpoint files; empty disables
	// checkpointing.
	CheckpointDir string
	// CheckpointDevice models the checkpoint target; nil means PMem charged
	// to cfg.Meter (the default comparison setup — and the source of the
	// interference Fig. 12 measures).
	CheckpointDevice *device.Timed
	// QuantizeCheckpoint stores checkpoint payloads as fp16 (Check-N-Run's
	// compression, cited by the paper), halving checkpoint bytes.
	QuantizeCheckpoint bool
}

// New creates an Ori-Cache engine over the given arena.
func New(cfg psengine.Config, arena *pmem.Arena, opts Options) (*Engine, error) {
	cfg = cfg.WithDefaults()
	cfg.LRUUpdateOnPush = true // the defining black-box behaviour
	if want := pmem.FloatBytes(cfg.EntryFloats()); arena.PayloadBytes() != want {
		return nil, fmt.Errorf("oricache: arena payload %dB does not match entry size %dB", arena.PayloadBytes(), want)
	}
	e := &Engine{
		cfg:        cfg,
		obs:        psengine.NewEngineObs(cfg.Obs),
		arena:      arena,
		dram:       device.NewTimedDRAM(cfg.Meter),
		lru:        cache.NewList[*entry](),
		dirtySince: make(map[uint64]struct{}),
		ckptDev:    opts.CheckpointDevice,
	}
	if e.ckptDev == nil {
		e.ckptDev = device.NewTimedPMem(cfg.Meter)
	}
	e.completedCkpt.Store(-1)
	e.lastEnded.Store(-1)
	for i := range e.shards {
		e.shards[i].entries = make(map[uint64]*entry)
	}
	e.evictObs = e.obs.ShardEvictions(0)
	if opts.CheckpointDir != "" {
		w, err := checkpoint.NewWriter(opts.CheckpointDir, e.ckptDev)
		if err != nil {
			return nil, err
		}
		w.SetQuantize(opts.QuantizeCheckpoint)
		w.SetObs(cfg.Obs)
		e.writer = w
	}
	return e, nil
}

// Name implements psengine.Engine.
func (e *Engine) Name() string { return "ori-cache" }

// Dim implements psengine.Engine.
func (e *Engine) Dim() int { return e.cfg.Dim }

// Arena exposes the backing arena.
func (e *Engine) Arena() *pmem.Arena { return e.arena }

func (e *Engine) shardFor(key uint64) *shard {
	return &e.shards[(key*0x9e3779b97f4a7c15)>>58&(numShards-1)]
}

// Pull implements psengine.Engine. Every key pays the full black-box cache
// protocol inline: map lookup, LRU reorder, and on a miss a PMem read plus
// an immediate victim writeback.
func (e *Engine) Pull(batch int64, keys []uint64, dst []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	dim := e.cfg.Dim
	_, err := psengine.GatherRows(e.obs, keys, dst, dim, func(k uint64, out []float32) error {
		ent, err := e.access(k, true)
		if err != nil {
			return err
		}
		ent.mu.Lock()
		copy(out, ent.buf[:dim])
		ent.mu.Unlock()
		e.dram.ChargeRead(4 * dim)
		return nil
	})
	return err
}

// access resolves key to a cached entry, performing inline cache
// maintenance: creation on first touch, promotion on miss, LRU reorder on
// every access, and eviction when over capacity.
func (e *Engine) access(k uint64, isRead bool) (*entry, error) {
	meter := e.cfg.Meter
	meter.Charge(simclock.Compute, psengine.IndexProbeCost)
	meter.Charge(simclock.LockSync, psengine.LockCost) // map shard lock

	s := e.shardFor(k)
	s.mu.RLock()
	ent := s.entries[k]
	s.mu.RUnlock()
	if ent == nil {
		var err error
		ent, err = e.create(k)
		if err != nil {
			return nil, err
		}
	}

	ent.mu.Lock()
	cached := ent.buf != nil
	if !cached {
		// Inline promotion: PMem read on the critical path.
		var missStart time.Duration
		if e.obs.Enabled() {
			missStart = e.obs.Now()
		}
		buf := make([]byte, e.arena.PayloadBytes())
		if err := e.arena.ReadPayload(ent.slot, buf); err != nil {
			ent.mu.Unlock()
			return nil, err
		}
		ent.buf = make([]float32, e.cfg.EntryFloats())
		pmem.DecodeFloats(ent.buf, buf)
		e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
		e.pmemReads.Add(1)
		e.misses.Add(1)
		if e.obs.Enabled() {
			e.obs.MissService.Observe(e.obs.Now() - missStart)
		}
	} else if isRead {
		e.hits.Add(1)
	}
	ent.mu.Unlock()

	// Inline LRU maintenance under the single global list lock — on every
	// access, reads and writes alike. This serialization is charged under
	// GlobalSync: it cannot parallelize across PS threads, and under the
	// synchronous-training bursts its effective cost grows with the number
	// of concurrent requesters (Observation 1).
	meter.Charge(simclock.GlobalSync, globalLRUCost)
	e.lruMu.Lock()
	if ent.node.InList() {
		e.lru.MoveToFront(&ent.node)
	} else {
		e.lru.PushFront(&ent.node)
	}
	victims := e.collectVictimsLocked()
	e.lruMu.Unlock()

	for _, v := range victims {
		if err := e.writeback(v); err != nil {
			return nil, err
		}
	}
	return ent, nil
}

// lruOpCost is the virtual CPU cost of one LRU relink (same calibration as
// the PMem-OE maintainer's; the difference is *where* it is paid — here, on
// the request critical path).
const lruOpCost = 15 * time.Nanosecond

func (e *Engine) create(k uint64) (*entry, error) {
	s := e.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent := s.entries[k]; ent != nil {
		return ent, nil
	}
	if e.entries.Load() >= int64(e.cfg.Capacity) {
		return nil, fmt.Errorf("%w: %d entries", psengine.ErrCapacity, e.entries.Load())
	}
	slot, err := e.arena.Alloc()
	if err != nil {
		return nil, fmt.Errorf("oricache: %w", err)
	}
	ent := &entry{key: k, slot: slot, dirty: true}
	ent.node.Value = ent
	ent.buf = make([]float32, e.cfg.EntryFloats())
	e.cfg.Initializer(k, ent.buf[:e.cfg.Dim])
	e.cfg.Optimizer.InitState(ent.buf[e.cfg.Dim:])
	e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
	s.entries[k] = ent
	e.entries.Add(1)
	e.markDirty(k)
	return ent, nil
}

// collectVictimsLocked unlinks LRU victims while over capacity; the caller
// writes them back outside the list lock (their entry mutex orders the
// flush against concurrent use).
func (e *Engine) collectVictimsLocked() []*entry {
	var victims []*entry
	for e.lru.Len() > e.cfg.CacheEntries {
		v := e.lru.Back().Value
		e.lru.Remove(&v.node)
		victims = append(victims, v)
	}
	return victims
}

// writeback flushes a victim to its PMem slot (inline, on the request
// path) and drops the DRAM copy.
func (e *Engine) writeback(v *entry) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.buf == nil {
		return nil // already written back by a racing access
	}
	if v.dirty {
		buf := make([]byte, e.arena.PayloadBytes())
		pmem.EncodeFloats(buf, v.buf)
		if err := e.arena.WriteRecord(v.slot, v.key, 0, buf); err != nil {
			return err
		}
		v.dirty = false
		e.pmemWrites.Add(1)
	}
	v.buf = nil
	e.evictions.Add(1)
	e.evictObs.Add(1)
	return nil
}

// EndPullPhase implements psengine.Engine; Ori-Cache has no deferred work.
func (e *Engine) EndPullPhase(int64) {}

// WaitMaintenance implements psengine.Engine; Ori-Cache has no deferred work.
func (e *Engine) WaitMaintenance() {}

// Push implements psengine.Engine. The cache treats it as an independent
// access: full map lookup, LRU reorder, possible miss handling — the
// redundant work the paper's co-designed pipeline eliminates.
func (e *Engine) Push(batch int64, keys []uint64, grads []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, grads, e.cfg.Dim); err != nil {
		return err
	}
	var obsStart time.Duration
	if e.obs.Enabled() {
		obsStart = e.obs.Now()
	}
	dim := e.cfg.Dim
	for i, k := range keys {
		ent, err := e.access(k, false)
		if err != nil {
			return err
		}
		ent.mu.Lock()
		if ent.buf == nil {
			ent.mu.Unlock()
			// Evicted between access and lock under extreme pressure; retry.
			if ent, err = e.access(k, false); err != nil {
				return err
			}
			ent.mu.Lock()
		}
		e.cfg.Optimizer.Apply(ent.buf[:dim], ent.buf[dim:], grads[i*dim:(i+1)*dim])
		ent.dirty = true
		ent.mu.Unlock()
		e.dram.ChargeWrite(4 * dim)
		e.markDirty(k)
	}
	if e.obs.Enabled() {
		e.obs.Push.Observe(e.obs.Now() - obsStart)
	}
	return nil
}

func (e *Engine) markDirty(k uint64) {
	e.dirtyMu.Lock()
	e.dirtySince[k] = struct{}{}
	e.dirtyMu.Unlock()
}

// EndBatch implements psengine.Engine.
func (e *Engine) EndBatch(batch int64) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	e.lastEnded.Store(batch)
	return nil
}

// RequestCheckpoint implements psengine.Engine with the incremental
// baseline: synchronously dump every entry dirtied since the last
// checkpoint, whether it currently lives in DRAM or PMem.
func (e *Engine) RequestCheckpoint(batch int64) error {
	if e.writer == nil {
		return fmt.Errorf("oricache: checkpointing not configured")
	}
	if batch != e.lastEnded.Load() {
		return fmt.Errorf("oricache: checkpoint batch %d is not the last sealed batch %d", batch, e.lastEnded.Load())
	}
	// Like DRAM-PS, the incremental dump runs synchronously: its whole
	// duration is checkpoint stall visible to training.
	var obsStart time.Duration
	if e.obs.Enabled() {
		obsStart = e.obs.Now()
	}
	e.dirtyMu.Lock()
	dirty := e.dirtySince
	e.dirtySince = make(map[uint64]struct{})
	e.dirtyMu.Unlock()

	delta := make([]checkpoint.Entry, 0, len(dirty))
	scratch := make([]byte, e.arena.PayloadBytes())
	for k := range dirty {
		s := e.shardFor(k)
		s.mu.RLock()
		ent := s.entries[k]
		s.mu.RUnlock()
		if ent == nil {
			continue
		}
		payload := make([]float32, e.cfg.EntryFloats())
		ent.mu.Lock()
		if ent.buf != nil {
			copy(payload, ent.buf)
		} else {
			if err := e.arena.ReadPayload(ent.slot, scratch); err != nil {
				ent.mu.Unlock()
				return err
			}
			pmem.DecodeFloats(payload, scratch)
			e.pmemReads.Add(1)
		}
		ent.mu.Unlock()
		delta = append(delta, checkpoint.Entry{Key: k, Payload: payload})
	}
	if err := e.writer.WriteDelta(batch, delta); err != nil {
		return err
	}
	if e.obs.Enabled() {
		e.obs.CkptStall.Observe(e.obs.Now() - obsStart)
	}
	e.completedCkpt.Store(batch)
	e.ckptsDone.Add(1)
	return nil
}

// CompletedCheckpoint implements psengine.Engine.
func (e *Engine) CompletedCheckpoint() int64 { return e.completedCkpt.Load() }

// Stats implements psengine.Engine.
func (e *Engine) Stats() psengine.Stats {
	e.lruMu.Lock()
	cached := int64(e.lru.Len())
	e.lruMu.Unlock()
	return psengine.Stats{
		Entries:         e.entries.Load(),
		CachedEntries:   cached,
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		PMemReads:       e.pmemReads.Load(),
		PMemWrites:      e.pmemWrites.Load(),
		Evictions:       e.evictions.Load(),
		CheckpointsDone: e.ckptsDone.Load(),
	}
}

// Close implements psengine.Engine.
func (e *Engine) Close() error {
	e.closed.Store(true)
	return nil
}

// globalLRUCost is the per-access cost of the single global lock plus list
// splice under the synchronous burst: an exclusive cache-line transfer per
// lock handoff and three pointer writes, ~500ns when dozens of request
// threads hammer one line (measured figures for contended std::mutex +
// std::list on multi-socket servers are in this range even before
// queueing, which the simulator's contention model adds on top).
const globalLRUCost = 500 * time.Nanosecond
