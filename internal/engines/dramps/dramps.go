// Package dramps implements the paper's DRAM-PS baseline (Table III): a
// classic pure-DRAM parameter server — sharded hash table, no PMem tier —
// with incremental checkpointing to a separate checkpoint device. It is the
// performance upper bound in the evaluation and the most expensive to
// provision (Table V).
package dramps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/checkpoint"
	"openembedding/internal/device"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

const numShards = 64

type shard struct {
	mu      sync.RWMutex
	entries map[uint64]*entry
}

type entry struct {
	mu    sync.Mutex
	buf   []float32 // weights ++ optimizer state
	dirty bool      // modified since the last checkpoint
}

// Engine is a pure-DRAM parameter-server storage engine.
type Engine struct {
	cfg    psengine.Config
	obs    *psengine.EngineObs
	dram   *device.Timed
	shards [numShards]shard

	writer  *checkpoint.Writer
	ckptDev *device.Timed

	// Asynchronous-checkpoint machinery (Options.AsyncCheckpoint).
	async          bool
	asyncWG        sync.WaitGroup
	asyncMu        sync.Mutex
	asyncErr       error
	asyncShardHook func(shard int) // test seam: called after each shard snapshot

	entries       atomic.Int64
	hits          atomic.Int64
	ckptsDone     atomic.Int64
	completedCkpt atomic.Int64
	lastEnded     atomic.Int64
	closed        atomic.Bool
}

// Options configures the parts of DRAM-PS that psengine.Config does not
// cover.
type Options struct {
	// CheckpointDir receives incremental checkpoint files; empty disables
	// checkpointing (RequestCheckpoint then fails).
	CheckpointDir string
	// CheckpointDevice is the cost model of the checkpoint target. The
	// paper's default comparison uses PMem; Fig. 14 also measures SSD.
	// Nil defaults to a PMem device charging to cfg.Meter.
	CheckpointDevice *device.Timed
	// QuantizeCheckpoint stores checkpoint payloads as fp16 (Check-N-Run's
	// compression, cited by the paper), halving checkpoint bytes.
	QuantizeCheckpoint bool
	// AsyncCheckpoint makes RequestCheckpoint return immediately and dump
	// in the background while training continues — the alternative
	// Sec. II-A discusses and rejects: entries updated mid-dump make the
	// checkpoint a mixture of batch states, which "might affect the
	// convergence of the model in an unexpected way" on recovery.
	// Implemented for completeness and to demonstrate that hazard
	// (TestAsyncCheckpointTearsBatches); the synchronous default is the
	// industry practice the paper builds on.
	AsyncCheckpoint bool
}

// New creates a DRAM-PS engine.
func New(cfg psengine.Config, opts Options) (*Engine, error) {
	cfg = cfg.WithDefaults()
	e := &Engine{
		cfg:     cfg,
		obs:     psengine.NewEngineObs(cfg.Obs),
		dram:    device.NewTimedDRAM(cfg.Meter),
		ckptDev: opts.CheckpointDevice,
		async:   opts.AsyncCheckpoint,
	}
	if e.ckptDev == nil {
		e.ckptDev = device.NewTimedPMem(cfg.Meter)
	}
	e.completedCkpt.Store(-1)
	e.lastEnded.Store(-1)
	for i := range e.shards {
		e.shards[i].entries = make(map[uint64]*entry)
	}
	if opts.CheckpointDir != "" {
		w, err := checkpoint.NewWriter(opts.CheckpointDir, e.ckptDev)
		if err != nil {
			return nil, err
		}
		w.SetQuantize(opts.QuantizeCheckpoint)
		w.SetObs(cfg.Obs)
		e.writer = w
	}
	return e, nil
}

// Name implements psengine.Engine.
func (e *Engine) Name() string { return "dram-ps" }

// Dim implements psengine.Engine.
func (e *Engine) Dim() int { return e.cfg.Dim }

func (e *Engine) shardFor(key uint64) *shard {
	return &e.shards[(key*0x9e3779b97f4a7c15)>>58&(numShards-1)]
}

// Pull implements psengine.Engine.
func (e *Engine) Pull(batch int64, keys []uint64, dst []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	dim := e.cfg.Dim
	meter := e.cfg.Meter
	meter.Charge(simclock.LockSync, psengine.LockCost)
	_, err := psengine.GatherRows(e.obs, keys, dst, dim, func(k uint64, out []float32) error {
		meter.Charge(simclock.Compute, psengine.IndexProbeCost)
		ent, err := e.lookupOrCreate(k)
		if err != nil {
			return err
		}
		copy(out, ent.buf[:dim])
		e.dram.ChargeRead(4 * dim)
		e.hits.Add(1)
		return nil
	})
	return err
}

func (e *Engine) lookupOrCreate(key uint64) (*entry, error) {
	s := e.shardFor(key)
	s.mu.RLock()
	ent := s.entries[key]
	s.mu.RUnlock()
	if ent != nil {
		return ent, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent = s.entries[key]; ent != nil {
		return ent, nil
	}
	if e.entries.Load() >= int64(e.cfg.Capacity) {
		return nil, fmt.Errorf("%w: %d entries", psengine.ErrCapacity, e.entries.Load())
	}
	ent = &entry{buf: make([]float32, e.cfg.EntryFloats()), dirty: true}
	e.cfg.Initializer(key, ent.buf[:e.cfg.Dim])
	e.cfg.Optimizer.InitState(ent.buf[e.cfg.Dim:])
	e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
	s.entries[key] = ent
	e.entries.Add(1)
	return ent, nil
}

// EndPullPhase implements psengine.Engine; DRAM-PS has no deferred work.
func (e *Engine) EndPullPhase(int64) {}

// WaitMaintenance implements psengine.Engine; DRAM-PS has no deferred work.
func (e *Engine) WaitMaintenance() {}

// Push implements psengine.Engine.
func (e *Engine) Push(batch int64, keys []uint64, grads []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, grads, e.cfg.Dim); err != nil {
		return err
	}
	var obsStart time.Duration
	if e.obs.Enabled() {
		obsStart = e.obs.Now()
	}
	dim := e.cfg.Dim
	meter := e.cfg.Meter
	meter.Charge(simclock.LockSync, psengine.LockCost)
	for i, k := range keys {
		meter.Charge(simclock.Compute, psengine.IndexProbeCost)
		s := e.shardFor(k)
		s.mu.RLock()
		ent := s.entries[k]
		s.mu.RUnlock()
		if ent == nil {
			return fmt.Errorf("dramps: push of unknown key %d", k)
		}
		ent.mu.Lock()
		e.cfg.Optimizer.Apply(ent.buf[:dim], ent.buf[dim:], grads[i*dim:(i+1)*dim])
		ent.dirty = true
		ent.mu.Unlock()
		e.dram.ChargeWrite(4 * dim)
	}
	if e.obs.Enabled() {
		e.obs.Push.Observe(e.obs.Now() - obsStart)
	}
	return nil
}

// EndBatch implements psengine.Engine.
func (e *Engine) EndBatch(batch int64) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	e.lastEnded.Store(batch)
	return nil
}

// RequestCheckpoint implements psengine.Engine with the baseline's
// incremental checkpoint: dump every entry dirtied since the previous
// checkpoint to the checkpoint device. By default the dump is synchronous —
// training pauses for its duration (the overhead Figs. 12/13 measure).
// With Options.AsyncCheckpoint the call returns immediately and the dump
// proceeds concurrently with training, trading the pause for batch-level
// inconsistency.
func (e *Engine) RequestCheckpoint(batch int64) error {
	if e.writer == nil {
		return fmt.Errorf("dramps: checkpointing not configured")
	}
	if batch != e.lastEnded.Load() {
		return fmt.Errorf("dramps: checkpoint batch %d is not the last sealed batch %d", batch, e.lastEnded.Load())
	}
	if !e.async {
		// The synchronous dump is the baseline's training pause (Figs.
		// 12/13): the whole dump duration is checkpoint stall.
		var obsStart time.Duration
		if e.obs.Enabled() {
			obsStart = e.obs.Now()
		}
		if err := e.collectAndWrite(batch); err != nil {
			return err
		}
		if e.obs.Enabled() {
			e.obs.CkptStall.Observe(e.obs.Now() - obsStart)
		}
		e.completedCkpt.Store(batch)
		e.ckptsDone.Add(1)
		return nil
	}
	e.asyncWG.Add(1)
	go func() {
		defer e.asyncWG.Done()
		if err := e.collectAndWrite(batch); err != nil {
			e.asyncMu.Lock()
			if e.asyncErr == nil {
				e.asyncErr = err
			}
			e.asyncMu.Unlock()
			return
		}
		e.completedCkpt.Store(batch)
		e.ckptsDone.Add(1)
	}()
	return nil
}

// collectAndWrite snapshots the dirty set shard by shard and writes the
// delta. In async mode, entries updated after their shard was visited —
// but before the dump finishes — leave the file with a mixture of batch
// states (Sec. II-A's consistency hazard).
func (e *Engine) collectAndWrite(batch int64) error {
	var delta []checkpoint.Entry
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for k, ent := range s.entries {
			ent.mu.Lock()
			if ent.dirty {
				payload := make([]float32, len(ent.buf))
				copy(payload, ent.buf)
				ent.dirty = false
				delta = append(delta, checkpoint.Entry{Key: k, Payload: payload})
			}
			ent.mu.Unlock()
		}
		s.mu.RUnlock()
		if e.asyncShardHook != nil {
			e.asyncShardHook(i)
		}
	}
	return e.writer.WriteDelta(batch, delta)
}

// WaitCheckpoints blocks until in-flight asynchronous checkpoints finish
// and returns the first background error.
func (e *Engine) WaitCheckpoints() error {
	e.asyncWG.Wait()
	e.asyncMu.Lock()
	defer e.asyncMu.Unlock()
	err := e.asyncErr
	e.asyncErr = nil
	return err
}

// CompletedCheckpoint implements psengine.Engine.
func (e *Engine) CompletedCheckpoint() int64 { return e.completedCkpt.Load() }

// Stats implements psengine.Engine.
func (e *Engine) Stats() psengine.Stats {
	n := e.entries.Load()
	return psengine.Stats{
		Entries:         n,
		CachedEntries:   n, // everything is in DRAM
		Hits:            e.hits.Load(),
		CheckpointsDone: e.ckptsDone.Load(),
	}
}

// Close implements psengine.Engine. It waits for in-flight asynchronous
// checkpoints.
func (e *Engine) Close() error {
	e.closed.Store(true)
	return e.WaitCheckpoints()
}

// Restore loads the newest checkpoint chain from dir into a fresh engine
// (the DRAM-PS recovery path of Sec. VI-E: read every checkpoint file from
// the checkpoint device, then repopulate DRAM).
func Restore(cfg psengine.Config, opts Options) (*Engine, int64, error) {
	e, err := New(cfg, opts)
	if err != nil {
		return nil, -1, err
	}
	state, newest, err := checkpoint.Restore(opts.CheckpointDir, -1, e.ckptDev)
	if err != nil {
		return nil, -1, err
	}
	for k, payload := range state {
		if len(payload) != e.cfg.EntryFloats() {
			return nil, -1, fmt.Errorf("dramps: restore: key %d payload %d floats, want %d", k, len(payload), e.cfg.EntryFloats())
		}
		s := e.shardFor(k)
		buf := make([]float32, len(payload))
		copy(buf, payload)
		s.entries[k] = &entry{buf: buf}
		e.entries.Add(1)
		e.dram.ChargeWrite(4 * len(payload))
	}
	e.lastEnded.Store(newest)
	e.completedCkpt.Store(newest)
	return e, newest, nil
}
