package dramps

import (
	"errors"
	"sync"
	"testing"

	"openembedding/internal/checkpoint"
	"openembedding/internal/optim"
	"openembedding/internal/psengine"
)

func testEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := New(psengine.Config{
		Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 64,
	}, Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func drive(t *testing.T, e *Engine, batch int64, keys []uint64, push bool) {
	t.Helper()
	dst := make([]float32, len(keys)*4)
	if err := e.Pull(batch, keys, dst); err != nil {
		t.Fatal(err)
	}
	if push {
		grads := make([]float32, len(keys)*4)
		for i := range grads {
			grads[i] = 1
		}
		if err := e.Push(batch, keys, grads); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EndBatch(batch); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCheckpointIsDelta: the second checkpoint must contain only
// the entries dirtied since the first — the defining property of the
// CheckFreq-style baseline.
func TestIncrementalCheckpointIsDelta(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, dir)

	drive(t, e, 0, []uint64{1, 2, 3}, true)
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	// Touch only key 2 afterwards.
	drive(t, e, 1, []uint64{2}, true)
	if err := e.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}

	first, err := checkpoint.ReadDelta(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := checkpoint.ReadDelta(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("first delta has %d entries, want 3", len(first))
	}
	if len(second) != 1 || second[0].Key != 2 {
		t.Fatalf("second delta = %+v, want only key 2", second)
	}
}

func TestPullOnlyEntriesStillCheckpointed(t *testing.T) {
	// A freshly created (never pushed) entry is dirty: its init state must
	// reach the first checkpoint or recovery would lose it.
	dir := t.TempDir()
	e := testEngine(t, dir)
	drive(t, e, 0, []uint64{9}, false)
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	delta, err := checkpoint.ReadDelta(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 1 || delta[0].Key != 9 {
		t.Fatalf("delta = %+v", delta)
	}
}

func TestCheckpointValidation(t *testing.T) {
	e := testEngine(t, t.TempDir())
	drive(t, e, 0, []uint64{1}, true)
	if err := e.RequestCheckpoint(5); err == nil {
		t.Fatal("checkpoint of unsealed batch accepted")
	}
	noCkpt, err := New(psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer noCkpt.Close()
	if err := noCkpt.RequestCheckpoint(0); err == nil {
		t.Fatal("unconfigured checkpoint accepted")
	}
}

func TestCapacityLimit(t *testing.T) {
	e := testEngine(t, t.TempDir())
	keys := make([]uint64, 65)
	for i := range keys {
		keys[i] = uint64(i)
	}
	err := e.Pull(0, keys, make([]float32, 65*4))
	if !errors.Is(err, psengine.ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
}

func TestClosedEngine(t *testing.T) {
	e := testEngine(t, t.TempDir())
	e.Close()
	if err := e.Pull(0, []uint64{1}, make([]float32, 4)); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := e.Push(0, []uint64{1}, make([]float32, 4)); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := e.EndBatch(0); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestRestoreMissingDir(t *testing.T) {
	_, _, err := Restore(psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 8},
		Options{CheckpointDir: t.TempDir()})
	if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

// TestAsyncCheckpointTearsBatches demonstrates the hazard the paper cites
// for asynchronous checkpointing (Sec. II-A): a concurrent update lands
// mid-dump, and the checkpoint captures a mixture of batch states — one
// key from before the update, one from after — a state no synchronous
// batch boundary ever had.
func TestAsyncCheckpointTearsBatches(t *testing.T) {
	dir := t.TempDir()
	e, err := New(psengine.Config{
		Dim: 1, Optimizer: optim.NewSGD(1), Capacity: 64,
	}, Options{CheckpointDir: dir, AsyncCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Two keys in different shards (found by probing), both at batch-0 state.
	keyA, keyB := uint64(0), uint64(0)
	for k := uint64(1); k < 1000 && keyB == 0; k++ {
		if e.shardFor(k) != e.shardFor(1) {
			keyB = k
		}
	}
	keyA = 1
	// Order the two keys by shard index so the hook can update the
	// later-visited one after the earlier was snapshotted.
	shardIdx := func(k uint64) int {
		for i := range e.shards {
			if &e.shards[i] == e.shardFor(k) {
				return i
			}
		}
		return -1
	}
	if shardIdx(keyA) > shardIdx(keyB) {
		keyA, keyB = keyB, keyA
	}

	keys := []uint64{keyA, keyB}
	dst := make([]float32, 2)
	if err := e.Pull(0, keys, dst); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(0, keys, []float32{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.EndBatch(0); err != nil {
		t.Fatal(err)
	}

	// The hook fires after each shard snapshot; once keyA's shard is done,
	// batch 1 updates BOTH keys while the dump is still in flight.
	var once sync.Once
	e.asyncShardHook = func(shard int) {
		if shard < shardIdx(keyA) {
			return
		}
		once.Do(func() {
			if err := e.Pull(1, keys, dst); err != nil {
				t.Error(err)
			}
			if err := e.Push(1, keys, []float32{1, 1}); err != nil {
				t.Error(err)
			}
			if err := e.EndBatch(1); err != nil {
				t.Error(err)
			}
		})
	}
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitCheckpoints(); err != nil {
		t.Fatal(err)
	}

	delta, err := checkpoint.ReadDelta(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[uint64]float32{}
	for _, ent := range delta {
		vals[ent.Key] = ent.Payload[0]
	}
	// keyA was snapshotted at its batch-0 value; keyB picked up batch 1's
	// update before its shard was visited: a torn, never-existed state.
	diff := vals[keyA] - vals[keyB]
	init := func(k uint64) float32 {
		w := make([]float32, 1)
		psengine.Config{Dim: 1, Optimizer: optim.NewSGD(1)}.WithDefaults().Initializer(k, w)
		return w[0]
	}
	wantTear := (init(keyA) - 1) - (init(keyB) - 2)
	if d := diff - wantTear; d > 1e-6 || d < -1e-6 {
		t.Fatalf("expected torn checkpoint (keyA at batch 0, keyB at batch 1): diff=%v want=%v", diff, wantTear)
	}
}

func TestQuantizedCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := New(psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 64},
		Options{CheckpointDir: dir, QuantizeCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	drive(t, e, 0, []uint64{1, 2}, true)
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 8)
	if err := e.Pull(1, []uint64{1, 2}, want); err != nil {
		t.Fatal(err)
	}

	re, newest, err := Restore(psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 64},
		Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if newest != 0 {
		t.Fatalf("restored batch %d", newest)
	}
	got := make([]float32, 8)
	if err := re.Pull(1, []uint64{1, 2}, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		diff := float64(got[i] - want[i])
		if diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("quantized restore[%d] = %v, want ~%v", i, got[i], want[i])
		}
	}
}
