// Package pmemhash implements the paper's PMem-Hash baseline (Observation
// 1, Fig. 3 and Fig. 15): the parameter server's storage engine replaced
// wholesale by a PMem-resident concurrent hash table (libpmemobj's
// concurrent_hash_map in the paper). There is no DRAM tier: every lookup
// pays a PMem read, and every update is a transactional read-modify-write —
// decode from PMem, apply the optimizer, write back with an undo-log copy —
// which is why it is 3-6x slower than DRAM-PS and degrades further under
// burst concurrency.
package pmemhash

import (
	"time"

	"fmt"
	"openembedding/internal/device"
	"sync"
	"sync/atomic"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

const numShards = 64

type shard struct {
	mu    sync.RWMutex
	slots map[uint64]uint32 // key -> arena slot
}

// Engine is the PMem-resident hash-table storage engine.
type Engine struct {
	cfg   psengine.Config
	obs   *psengine.EngineObs
	arena *pmem.Arena

	shards  [numShards]shard
	stripes [256]sync.Mutex // per-key update serialization

	entries       atomic.Int64
	pmemReads     atomic.Int64
	pmemWrites    atomic.Int64
	completedCkpt atomic.Int64
	lastEnded     atomic.Int64
	closed        atomic.Bool
}

// New creates a PMem-Hash engine over the given arena.
func New(cfg psengine.Config, arena *pmem.Arena) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if want := pmem.FloatBytes(cfg.EntryFloats()); arena.PayloadBytes() != want {
		return nil, fmt.Errorf("pmemhash: arena payload %dB does not match entry size %dB", arena.PayloadBytes(), want)
	}
	e := &Engine{cfg: cfg, obs: psengine.NewEngineObs(cfg.Obs), arena: arena}
	e.completedCkpt.Store(-1)
	e.lastEnded.Store(-1)
	for i := range e.shards {
		e.shards[i].slots = make(map[uint64]uint32)
	}
	return e, nil
}

// Name implements psengine.Engine.
func (e *Engine) Name() string { return "pmem-hash" }

// Dim implements psengine.Engine.
func (e *Engine) Dim() int { return e.cfg.Dim }

// Arena exposes the backing arena.
func (e *Engine) Arena() *pmem.Arena { return e.arena }

func (e *Engine) shardFor(key uint64) *shard {
	return &e.shards[(key*0x9e3779b97f4a7c15)>>58&(numShards-1)]
}

func (e *Engine) slotFor(key uint64, createBatch int64) (uint32, error) {
	meter := e.cfg.Meter
	// The hash structure itself lives in PMem: a probe costs a PMem-latency
	// pointer chase, not a DRAM one.
	meter.Charge(simclock.PMemRead, pmemProbeCost())
	meter.Charge(simclock.LockSync, psengine.LockCost)
	s := e.shardFor(key)
	s.mu.RLock()
	slot, ok := s.slots[key]
	s.mu.RUnlock()
	if ok {
		return slot, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok = s.slots[key]; ok {
		return slot, nil
	}
	if e.entries.Load() >= int64(e.cfg.Capacity) {
		return 0, fmt.Errorf("%w: %d entries", psengine.ErrCapacity, e.entries.Load())
	}
	slot, err := e.arena.Alloc()
	if err != nil {
		return 0, fmt.Errorf("pmemhash: %w", err)
	}
	buf := make([]float32, e.cfg.EntryFloats())
	e.cfg.Initializer(key, buf[:e.cfg.Dim])
	e.cfg.Optimizer.InitState(buf[e.cfg.Dim:])
	payload := make([]byte, e.arena.PayloadBytes())
	pmem.EncodeFloats(payload, buf)
	if err := e.arena.WriteRecord(slot, key, createBatch, payload); err != nil {
		e.arena.Free(slot)
		return 0, err
	}
	e.pmemWrites.Add(1)
	s.slots[key] = slot
	e.entries.Add(1)
	return slot, nil
}

// Pull implements psengine.Engine: every key is read straight from PMem.
func (e *Engine) Pull(batch int64, keys []uint64, dst []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	buf := make([]byte, e.arena.PayloadBytes())
	d, err := psengine.GatherRows(e.obs, keys, dst, e.cfg.Dim, func(k uint64, out []float32) error {
		slot, err := e.slotFor(k, batch)
		if err != nil {
			return err
		}
		if err := e.arena.ReadPayload(slot, buf); err != nil {
			return err
		}
		pmem.DecodeFloats(out, buf)
		e.pmemReads.Add(1)
		return nil
	})
	if err != nil {
		return err
	}
	// Every PMem-Hash read is a miss by construction — the same reading
	// Stats reports — so pull latency doubles as miss service time.
	e.obs.MissService.Observe(d)
	return nil
}

// EndPullPhase implements psengine.Engine; there is no deferred work.
func (e *Engine) EndPullPhase(int64) {}

// WaitMaintenance implements psengine.Engine; there is no deferred work.
func (e *Engine) WaitMaintenance() {}

// Push implements psengine.Engine: a transactional read-modify-write per
// key. The undo-log copy that makes the update failure-atomic costs a
// second PMem write of the record — the write amplification that sinks
// this design under DLRM's update-heavy bursts.
func (e *Engine) Push(batch int64, keys []uint64, grads []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, grads, e.cfg.Dim); err != nil {
		return err
	}
	var obsStart time.Duration
	if e.obs.Enabled() {
		obsStart = e.obs.Now()
	}
	dim := e.cfg.Dim
	raw := make([]byte, e.arena.PayloadBytes())
	vals := make([]float32, e.cfg.EntryFloats())
	for i, k := range keys {
		slot, err := e.slotFor(k, batch)
		if err != nil {
			return err
		}
		stripe := &e.stripes[k%uint64(len(e.stripes))]
		stripe.Lock()
		if err := e.arena.ReadPayload(slot, raw); err != nil {
			stripe.Unlock()
			return err
		}
		pmem.DecodeFloats(vals, raw)
		e.cfg.Optimizer.Apply(vals[:dim], vals[dim:], grads[i*dim:(i+1)*dim])
		// Undo-log: persist the old image before overwriting (charged as an
		// extra PMem write of the same size).
		e.cfg.Meter.Charge(simclock.PMemWrite, undoLogCost(e.arena))
		pmem.EncodeFloats(raw, vals)
		if err := e.arena.WriteRecord(slot, k, batch, raw); err != nil {
			stripe.Unlock()
			return err
		}
		stripe.Unlock()
		e.pmemReads.Add(1)
		e.pmemWrites.Add(2)
	}
	if e.obs.Enabled() {
		e.obs.Push.Observe(e.obs.Now() - obsStart)
	}
	return nil
}

// EndBatch implements psengine.Engine.
func (e *Engine) EndBatch(batch int64) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	e.lastEnded.Store(batch)
	return nil
}

// RequestCheckpoint implements psengine.Engine. Entries are already
// persistent (though without batch-level atomicity — Observation 2); the
// baseline simply records the batch ID. The evaluation never runs
// PMem-Hash with checkpointing.
func (e *Engine) RequestCheckpoint(batch int64) error {
	if batch != e.lastEnded.Load() {
		return fmt.Errorf("pmemhash: checkpoint batch %d is not the last sealed batch %d", batch, e.lastEnded.Load())
	}
	if err := e.arena.SetCheckpointedBatch(batch); err != nil {
		return err
	}
	e.completedCkpt.Store(batch)
	return nil
}

// CompletedCheckpoint implements psengine.Engine.
func (e *Engine) CompletedCheckpoint() int64 { return e.completedCkpt.Load() }

// Stats implements psengine.Engine.
func (e *Engine) Stats() psengine.Stats {
	return psengine.Stats{
		Entries:    e.entries.Load(),
		Misses:     e.pmemReads.Load(), // every read goes to PMem
		PMemReads:  e.pmemReads.Load(),
		PMemWrites: e.pmemWrites.Load(),
	}
}

// Close implements psengine.Engine.
func (e *Engine) Close() error {
	e.closed.Store(true)
	return nil
}

// pmemProbeCost is the virtual time of one PMem-resident hash probe: the
// bucket chain of libpmemobj's concurrent_hash_map costs ~3 dependent
// 64-byte pointer chases at PMem random-read latency.
func pmemProbeCost() time.Duration { return 3 * device.PMem().ReadCost(64) }

// undoLogCost is the virtual time of one transactional record update
// beyond the data write itself: tx begin/commit bookkeeping, the undo-log
// copy of the old image, and the extra fences — a few microseconds per
// small object on real Optane with libpmemobj, dominated by 256 B-granular
// media writes.
func undoLogCost(a *pmem.Arena) time.Duration {
	return 5*time.Microsecond + device.PMem().WriteCost(a.PayloadBytes())
}
