package pmemhash

import (
	"errors"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

func testEngine(t *testing.T, capacity int) (*Engine, *simclock.Meter) {
	t.Helper()
	cfg := psengine.Config{
		Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: capacity,
		Meter: simclock.NewMeter(),
	}.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, capacity), device.NewTimedPMem(cfg.Meter))
	arena, err := pmem.NewArena(dev, payload, capacity)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, cfg.Meter
}

// TestEveryReadHitsPMem: PMem-Hash has no DRAM tier — every pull charges
// PMem read time, even for the hottest key.
func TestEveryReadHitsPMem(t *testing.T) {
	e, m := testEngine(t, 16)
	dst := make([]float32, 4)
	for i := 0; i < 10; i++ {
		if err := e.Pull(int64(i), []uint64{1}, dst); err != nil {
			t.Fatal(err)
		}
		if err := e.EndBatch(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.PMemReads < 10 {
		t.Fatalf("pmem reads = %d, want one per pull", st.PMemReads)
	}
	if m.Total(simclock.PMemRead) <= 0 {
		t.Fatal("no PMem read time charged")
	}
}

// TestUpdateIsTransactionalRMW: each push pays a read plus two writes
// (undo log + data) — the write amplification of Observation 1.
func TestUpdateIsTransactionalRMW(t *testing.T) {
	e, m := testEngine(t, 16)
	dst := make([]float32, 4)
	if err := e.Pull(0, []uint64{1}, dst); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	wBefore := m.Total(simclock.PMemWrite)
	if err := e.Push(0, []uint64{1}, []float32{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.PMemWrites-before.PMemWrites != 2 {
		t.Fatalf("push did %d writes, want 2 (undo + data)", after.PMemWrites-before.PMemWrites)
	}
	if after.PMemReads-before.PMemReads != 1 {
		t.Fatalf("push did %d reads, want 1", after.PMemReads-before.PMemReads)
	}
	if m.Total(simclock.PMemWrite) <= wBefore {
		t.Fatal("push charged no PMem write time")
	}
}

// TestUpdateDurableWithoutFlushCall: after Push returns, a crash loses
// nothing (in-place transactional persistence).
func TestUpdateDurableWithoutFlushCall(t *testing.T) {
	e, _ := testEngine(t, 16)
	dst := make([]float32, 4)
	if err := e.Pull(0, []uint64{5}, dst); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(0, []uint64{5}, []float32{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 4)
	if err := e.Pull(1, []uint64{5}, want); err != nil {
		t.Fatal(err)
	}

	e.Arena().Device().Crash()
	got := make([]float32, 4)
	if err := e.Pull(2, []uint64{5}, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("crash lost update: %v vs %v", got, want)
		}
	}
}

func TestCapacity(t *testing.T) {
	e, _ := testEngine(t, 4)
	keys := []uint64{1, 2, 3, 4, 5}
	err := e.Pull(0, keys, make([]float32, 5*4))
	if !errors.Is(err, psengine.ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
}

func TestCheckpointIsMetadataOnly(t *testing.T) {
	e, _ := testEngine(t, 16)
	dst := make([]float32, 4)
	if err := e.Pull(0, []uint64{1}, dst); err != nil {
		t.Fatal(err)
	}
	if err := e.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	if e.CompletedCheckpoint() != 0 {
		t.Fatal("checkpoint not recorded")
	}
	if id, _ := e.Arena().CheckpointedBatch(); id != 0 {
		t.Fatalf("durable ckpt id = %d", id)
	}
	if err := e.RequestCheckpoint(5); err == nil {
		t.Fatal("unsealed checkpoint accepted")
	}
}
