package ps

import (
	"errors"
	"testing"
	"time"

	"openembedding/internal/optim"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/simclock"
)

func restartNodeConfig() NodeConfig {
	return NodeConfig{
		Engine: "pmem-oe",
		Store: psengine.Config{
			Dim:               4,
			Optimizer:         optim.NewSGD(0.1),
			Capacity:          256,
			CacheEntries:      8,
			Meter:             simclock.NewMeter(),
			Shards:            1,
			RetainCheckpoints: 2,
		},
	}
}

func startRestartNode(t *testing.T) (*Node, *rpc.Client) {
	t.Helper()
	n, err := StartNode("127.0.0.1:0", restartNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cl, err := rpc.DialOpts(n.Addr(), rpc.Options{
		Retry:        rpc.RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond},
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return n, cl
}

// driveConst runs one synchronous batch over the wire with a constant
// gradient (reusing the package driveBatch helper).
func driveConst(t *testing.T, cl *rpc.Client, batch int64, keys []uint64, grad float32) []float32 {
	t.Helper()
	grads := make([]float32, len(keys)*4)
	for i := range grads {
		grads[i] = grad
	}
	return driveBatch(t, cl, batch, keys, grads)
}

// commitOverWire requests a checkpoint and polls completion; the polls
// drive the engine's checkpoint finalizer through the RPC progress hook.
func commitOverWire(t *testing.T, cl *rpc.Client, batch int64) {
	t.Helper()
	if err := cl.RequestCheckpoint(batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done, err := cl.CompletedCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if done >= batch {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint %d never completed (at %d)", batch, done)
		}
	}
}

// TestNodeCrashRestartEpochFence exercises the whole node-recovery story:
// crash drops the server and volatile state, restart recovers from the
// surviving image at the same address with a bumped epoch, the stale
// client is fenced until AdoptEpoch, and the recovered weights are the
// checkpointed ones.
func TestNodeCrashRestartEpochFence(t *testing.T) {
	n, cl := startRestartNode(t)
	keys := []uint64{1, 2, 3}

	w0 := driveConst(t, cl, 0, keys, 1.0) // w1 = w0 - 0.1
	commitOverWire(t, cl, 0)
	driveConst(t, cl, 1, keys, 1.0) // w2 = w0 - 0.2, NOT checkpointed

	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Pull(2, keys); err == nil {
		t.Fatal("pull succeeded against a crashed node")
	}

	ckpt, err := n.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt != 0 {
		t.Fatalf("restarted at checkpoint %d, want 0", ckpt)
	}
	if n.Epoch() != 1 {
		t.Fatalf("epoch after restart = %d, want 1", n.Epoch())
	}

	// The redialed client learns the new epoch and is fenced.
	_, err = cl.Pull(2, keys)
	if !errors.Is(err, rpc.ErrEpochFenced) {
		t.Fatalf("stale pull after restart: %v, want ErrEpochFenced", err)
	}
	if _, err := cl.AdoptEpoch(); err != nil {
		t.Fatal(err)
	}
	w, err := cl.Pull(2, keys)
	if err != nil {
		t.Fatalf("pull after AdoptEpoch: %v", err)
	}
	// Recovered state is the checkpoint at batch 0: one SGD step applied.
	for i := range w {
		want := w0[i] - 0.1
		if d := w[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("recovered w[%d] = %v, want %v (checkpoint state)", i, w[i], want)
		}
	}
}

// TestNodeRollbackRPC rolls a live node back to the retained previous
// checkpoint over the wire and verifies the epoch fences, the state
// rewinds, and the address never changes.
func TestNodeRollbackRPC(t *testing.T) {
	n, cl := startRestartNode(t)
	keys := []uint64{7, 8}

	w0 := driveConst(t, cl, 0, keys, 1.0)
	commitOverWire(t, cl, 0) // cur=0
	driveConst(t, cl, 1, keys, 1.0)
	commitOverWire(t, cl, 1) // cur=1, prev=0

	if err := cl.Rollback(0); err != nil {
		t.Fatalf("rollback RPC: %v", err)
	}
	if n.Epoch() != 1 {
		t.Fatalf("epoch after rollback = %d, want 1", n.Epoch())
	}
	// The rolling-back client is fenced like everyone else until it
	// re-adopts.
	if _, err := cl.Pull(1, keys); !errors.Is(err, rpc.ErrEpochFenced) {
		t.Fatalf("pull after rollback: %v, want ErrEpochFenced", err)
	}
	if _, err := cl.AdoptEpoch(); err != nil {
		t.Fatal(err)
	}
	w, err := cl.Pull(1, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		want := w0[i] - 0.1 // state as of checkpoint 0
		if d := w[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("rolled-back w[%d] = %v, want %v", i, w[i], want)
		}
	}
	// Idempotent: rolling back again to the same checkpoint succeeds.
	if err := cl.Rollback(0); err != nil {
		t.Fatalf("repeated rollback: %v", err)
	}
	if _, err := cl.AdoptEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Pull(1, keys); err != nil {
		t.Fatalf("pull after repeated rollback: %v", err)
	}
}

// TestCrashUnsupportedEngines: only pmem-oe nodes can crash-recover; the
// baselines reject cleanly.
func TestCrashUnsupportedEngines(t *testing.T) {
	cfg := restartNodeConfig()
	cfg.Engine = "dram-ps"
	cfg.Store.RetainCheckpoints = 1
	n, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Crash(); err == nil {
		t.Fatal("dram-ps node accepted Crash")
	}
	if _, err := n.Restart(); err == nil {
		t.Fatal("un-crashed node accepted Restart")
	}
}
