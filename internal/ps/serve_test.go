package ps

import (
	"strings"
	"testing"
	"time"

	"openembedding/internal/optim"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/simclock"
)

func serveNodeConfig() NodeConfig {
	return NodeConfig{
		Engine: "pmem-oe",
		Serve:  true,
		Store: psengine.Config{
			Dim:               4,
			Optimizer:         optim.NewSGD(0.1),
			Capacity:          256,
			CacheEntries:      64,
			Meter:             simclock.NewMeter(),
			Shards:            2,
			RetainCheckpoints: 2,
		},
	}
}

func startServeNode(t *testing.T) (*Node, *rpc.Client) {
	t.Helper()
	n, err := StartNode("127.0.0.1:0", serveNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cl, err := rpc.DialOpts(n.Addr(), rpc.Options{
		Retry:        rpc.RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond},
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return n, cl
}

// sumRows pools per-key rows (fetched over the wire) the way the server
// does: sequential float32 adds in bag order.
func sumRows(w []float32, dim int, lo, hi int) []float32 {
	out := make([]float32, dim)
	copy(out, w[lo*dim:(lo+1)*dim])
	for j := lo + 1; j < hi; j++ {
		for i := 0; i < dim; i++ {
			out[i] += w[j*dim+i]
		}
	}
	return out
}

// TestNodeServesPullBags: a Serve-enabled node answers MsgPullBag with
// server-side pooling that matches its own Pull rows.
func TestNodeServesPullBags(t *testing.T) {
	n, cl := startServeNode(t)
	if n.ServeHandler() == nil {
		t.Fatal("serve handler missing on a Serve node")
	}
	keys := []uint64{1, 2, 3, 4, 5}
	w := driveConst(t, cl, 0, keys, 1.0)
	// driveConst returns the pre-push pull; serving sees the post-push rows
	// (one SGD step: lr=0.1, g=1).
	for i := range w {
		w[i] -= 0.1
	}

	// Bags: [1 2] [] [3 4 5]
	offsets := []uint32{0, 2, 2, 5}
	got, err := cl.PullBags(false, offsets, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3*4 {
		t.Fatalf("got %d floats, want 12", len(got))
	}
	want := append(sumRows(w, 4, 0, 2), make([]float32, 4)...)
	want = append(want, sumRows(w, 4, 2, 5)...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bag floats[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Mean mode divides by the full bag count.
	gotMean, err := cl.PullBags(true, []uint32{0, 2}, keys[:2])
	if err != nil {
		t.Fatal(err)
	}
	inv := float32(1) / 2
	for i := 0; i < 4; i++ {
		if want := (w[i] + w[4+i]) * inv; gotMean[i] != want {
			t.Fatalf("mean bag[%d] = %v, want %v", i, gotMean[i], want)
		}
	}
}

// TestNodeWithoutServeRejectsPullBags: the hook is opt-in; a plain node
// answers MsgPullBag with a clean remote error, not a dropped connection.
func TestNodeWithoutServeRejectsPullBags(t *testing.T) {
	cfg := serveNodeConfig()
	cfg.Serve = false
	n, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.ServeHandler() != nil {
		t.Fatal("serve handler present without cfg.Serve")
	}
	cl, err := rpc.Dial(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	driveBatch(t, cl, 0, []uint64{1}, nil)
	_, err = cl.PullBags(false, []uint32{0, 1}, []uint64{1})
	if err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("bag pull on a non-serving node: %v, want unsupported error", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after rejected bag pull: %v", err)
	}
}

// TestNodeServeSurvivesCrashRestart: serving is re-wired to the recovered
// engine by Restart, and — because bag reads are read-only and eventually
// consistent — a stale client's PullBags works across the epoch fence
// without AdoptEpoch, returning the recovered (checkpointed) rows.
func TestNodeServeSurvivesCrashRestart(t *testing.T) {
	n, cl := startServeNode(t)
	keys := []uint64{1, 2, 3}
	w0 := driveConst(t, cl, 0, keys, 1.0)
	commitOverWire(t, cl, 0)
	driveConst(t, cl, 1, keys, 1.0) // not checkpointed; lost on crash

	h0 := n.ServeHandler()
	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PullBags(false, []uint32{0, 1}, keys[:1]); err == nil {
		t.Fatal("bag pull succeeded against a crashed node")
	}
	if _, err := n.Restart(); err != nil {
		t.Fatal(err)
	}
	if n.ServeHandler() == nil || n.ServeHandler() == h0 {
		t.Fatal("serve handler not re-wired to the recovered engine")
	}

	// Training pulls are fenced until the client re-adopts the epoch —
	// but serving is not: it reads whatever state the node has.
	if _, err := cl.Pull(2, keys); err == nil {
		t.Fatal("stale training pull not fenced after restart")
	}
	got, err := cl.PullBags(false, []uint32{0, 3}, keys)
	if err != nil {
		t.Fatalf("bag pull across the epoch fence: %v", err)
	}
	// Recovered state is the checkpoint at batch 0: one SGD step applied.
	want := make([]float32, 4)
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			want[i] += w0[j*4+i] - 0.1
		}
	}
	for i := range want {
		if d := got[i] - want[i]; d > 1e-5 || d < -1e-5 {
			t.Fatalf("recovered bag[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
