package ps

import (
	"errors"
	"testing"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/rpc"
)

// scrubNodeConfig arms the seeded media-fault model on a pmem-oe node with
// flush-verification off, so injected faults survive into the stored records
// and the scrubber (not the write path) is what finds them.
func scrubNodeConfig(rules ...faultinject.Rule) NodeConfig {
	cfg := restartNodeConfig()
	cfg.Inject = faultinject.New(42, rules...)
	cfg.MediaLabel = "m"
	cfg.Store.FlushVerifyDisabled = true
	return cfg
}

func startNodeWith(t *testing.T, cfg NodeConfig) (*Node, *rpc.Client) {
	t.Helper()
	n, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cl, err := rpc.DialOpts(n.Addr(), rpc.Options{
		Retry:        rpc.RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond},
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return n, cl
}

// TestScrubRPCRepairsTransparently: bit-rot in a stored record is found by
// the scrub RPC and corrected in place from the CRC32C syndrome — no state
// loss, so the epoch does not move.
func TestScrubRPCRepairsTransparently(t *testing.T) {
	n, cl := startNodeWith(t, scrubNodeConfig(
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Nth: 1}))
	keys := []uint64{1, 2, 3}
	driveConst(t, cl, 0, keys, 1.0) // first maintenance flush is the rotted one

	rep, err := cl.Scrub()
	if err != nil {
		t.Fatalf("scrub RPC: %v", err)
	}
	if rep.Scanned < 3 || rep.Corrupt != 1 || rep.Repaired != 1 || rep.Restored != 0 || rep.Fenced != 0 {
		t.Fatalf("scrub report %+v, want 1 corrupt repaired of >=3 scanned", rep)
	}
	if n.Epoch() != 0 {
		t.Fatalf("transparent repair moved the epoch to %d", n.Epoch())
	}
	rep2, err := cl.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrupt != 0 {
		t.Fatalf("second scrub still finds corruption: %+v", rep2)
	}
	if _, err := cl.Pull(1, keys); err != nil {
		t.Fatalf("pull after repair: %v", err)
	}
}

// TestPullReturnsRemoteCorrupt pins the wire half of the serve-path
// guarantee: a Pull that must serve a corrupted PMem record fails with the
// typed rpc.ErrRemoteCorrupt — it is NOT retried into garbage — and a
// subsequent scrub heals the node, fencing the epoch because healing rolled
// state back.
func TestPullReturnsRemoteCorrupt(t *testing.T) {
	// Flush stream on this node: occurrences 1-3 persist keys 1-3's
	// init-valued records during batch 0's maintenance; the ten keys of
	// batch 1 overflow the 8-entry cache and evict keys 1-3, whose post-push
	// records are flush occurrences 4-6. Poison occurrence 4: key 1's only
	// current record, served straight from PMem on the next pull. (Poison,
	// not rot: a single rotted bit is now corrected in place, and this test
	// needs genuinely unrecoverable media.)
	n, cl := startNodeWith(t, scrubNodeConfig(
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindPoison, Nth: 4}))
	keys := []uint64{1, 2, 3}
	driveConst(t, cl, 0, keys, 1.0)
	fill := make([]uint64, 10)
	for i := range fill {
		fill[i] = 10 + uint64(i)
	}
	driveConst(t, cl, 1, fill, 1.0)

	_, err := cl.Pull(2, []uint64{1})
	if err == nil {
		t.Fatal("pull served a corrupt record over the wire")
	}
	if !errors.Is(err, rpc.ErrRemoteCorrupt) {
		t.Fatalf("want ErrRemoteCorrupt, got %v", err)
	}
	// The connection survives a corrupt-read error: healthy keys still serve.
	if _, err := cl.Pull(2, []uint64{2}); err != nil {
		t.Fatalf("pull of healthy key after corrupt error: %v", err)
	}

	// Scrub quarantines the poisoned slot and heals by restoring key 1's
	// retained older record — a state regression, so the node fences its
	// epoch.
	rep, err := cl.Scrub()
	if err != nil {
		t.Fatalf("scrub RPC: %v", err)
	}
	if rep.Corrupt != 1 || rep.Restored != 1 || rep.Quarantined != 1 {
		t.Fatalf("scrub report %+v, want 1 corrupt quarantined and restored", rep)
	}
	if n.Epoch() != 1 {
		t.Fatalf("state-losing scrub left epoch at %d, want 1", n.Epoch())
	}
	if _, err := cl.Pull(2, []uint64{1}); !errors.Is(err, rpc.ErrEpochFenced) {
		t.Fatalf("pull after state-losing scrub: %v, want ErrEpochFenced", err)
	}
	if _, err := cl.AdoptEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Pull(2, []uint64{1}); err != nil {
		t.Fatalf("pull after adopting the fenced epoch: %v", err)
	}
}

// TestIntegrityFenceLosslessUnderContention pins the no-dropped-fence
// guarantee: the engine consumes its loss signal before notifying, so a
// fence arriving while mu is busy (as during a concurrent Crash/Close
// draining the maintainer pool) must neither block the maintainer nor be
// lost — it parks and applies as soon as mu frees up.
func TestIntegrityFenceLosslessUnderContention(t *testing.T) {
	n, _ := startNodeWith(t, restartNodeConfig())
	n.mu.Lock() // what the notify would race against
	n.integrityFence()
	if n.epoch != 0 {
		n.mu.Unlock()
		t.Fatal("fence applied while mu was held")
	}
	n.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for n.Epoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("parked fence was dropped: epoch never moved after mu was released")
		}
		time.Sleep(time.Millisecond)
	}
	// Uncontended, the fence applies synchronously.
	n.integrityFence()
	if got := n.Epoch(); got != 2 {
		t.Fatalf("uncontended fence: epoch %d, want 2", got)
	}
}

// TestScrubUnsupportedEngine: nodes without an integrity scrubber reject the
// RPC cleanly instead of crashing or pretending.
func TestScrubUnsupportedEngine(t *testing.T) {
	cfg := restartNodeConfig()
	cfg.Engine = "dram-ps"
	cfg.Store.RetainCheckpoints = 1
	_, cl := startNodeWith(t, cfg)
	if _, err := cl.Scrub(); err == nil {
		t.Fatal("dram-ps node accepted the scrub RPC")
	}
}

// TestCrashDuringScrub races a scrub RPC against a node crash: whichever
// wins, nothing deadlocks or panics, the scrub call returns (a report or a
// typed error), and the node restarts cleanly afterwards.
func TestCrashDuringScrub(t *testing.T) {
	n, cl := startNodeWith(t, scrubNodeConfig(
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Nth: 2}))
	keys := []uint64{1, 2, 3, 4, 5}
	driveConst(t, cl, 0, keys, 1.0)
	commitOverWire(t, cl, 0)

	done := make(chan error, 1)
	go func() {
		_, err := cl.Scrub()
		done <- err
	}()
	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done: // a report or a transport/closed error — both fine
	case <-time.After(10 * time.Second):
		t.Fatal("scrub deadlocked across a crash")
	}
	if _, err := n.Restart(); err != nil {
		t.Fatalf("restart after crash-during-scrub: %v", err)
	}
	if _, err := cl.AdoptEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Pull(1, keys); err != nil {
		t.Fatalf("pull after restart: %v", err)
	}
}
