package ps

import (
	"fmt"
	"sync"

	"openembedding/internal/core"
	"openembedding/internal/psengine"
)

// engineBox is the swappable engine slot a restartable node serves through:
// Crash/Restart/rollback replace the engine underneath the running RPC
// server without re-plumbing it. The RWMutex makes the swap safe against
// in-flight requests — readers (every request) share, the swap excludes.
// Requests that race a swap hit the closed old engine and fail with
// psengine.ErrClosed, which fault-tolerant clients treat as retryable once
// the transport drops; fenced clients are rejected by epoch anyway.
type engineBox struct {
	mu  sync.RWMutex
	eng psengine.Engine
}

func newEngineBox(eng psengine.Engine) *engineBox { return &engineBox{eng: eng} }

func (b *engineBox) get() psengine.Engine {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.eng
}

func (b *engineBox) set(eng psengine.Engine) {
	b.mu.Lock()
	b.eng = eng
	b.mu.Unlock()
}

// psengine.Engine forwarding.

func (b *engineBox) Name() string { return b.get().Name() }
func (b *engineBox) Dim() int     { return b.get().Dim() }
func (b *engineBox) Pull(batch int64, keys []uint64, dst []float32) error {
	return b.get().Pull(batch, keys, dst)
}
func (b *engineBox) EndPullPhase(batch int64) { b.get().EndPullPhase(batch) }
func (b *engineBox) WaitMaintenance()         { b.get().WaitMaintenance() }
func (b *engineBox) Push(batch int64, keys []uint64, grads []float32) error {
	return b.get().Push(batch, keys, grads)
}
func (b *engineBox) EndBatch(batch int64) error          { return b.get().EndBatch(batch) }
func (b *engineBox) RequestCheckpoint(batch int64) error { return b.get().RequestCheckpoint(batch) }
func (b *engineBox) CompletedCheckpoint() int64          { return b.get().CompletedCheckpoint() }
func (b *engineBox) Stats() psengine.Stats               { return b.get().Stats() }
func (b *engineBox) Close() error                        { return b.get().Close() }

// AdvanceCheckpoints forwards the optional checkpoint-progress hook when
// the boxed engine supports it, so the RPC server's type assertion sees it
// through the box.
func (b *engineBox) AdvanceCheckpoints() error {
	if adv, ok := b.get().(interface{ AdvanceCheckpoints() error }); ok {
		return adv.AdvanceCheckpoints()
	}
	return nil
}

// Scrub forwards the optional integrity-scrub hook to the boxed engine.
// The boxed engine's scrub may restore or fence entries (state loss), and
// the obligation to fence the node epoch passes through the box to the
// caller — the dynamic dispatch below hides core.Engine.Scrub's own
// fence-need contract from the analyzer, so it is restated here.
//
// migrator is the optional live-resharding hook set (DESIGN.md §15); only
// the pmem-oe engine implements it.
type migrator interface {
	ExportRange(match func(key uint64) bool, since int64, afterKey uint64, max int) ([]core.MigEntry, bool, error)
	AdoptEntries(entries []core.MigEntry) error
	DropRange(match func(key uint64) bool) (int, error)
}

// ExportRange forwards the migration export hook to the boxed engine.
func (b *engineBox) ExportRange(match func(key uint64) bool, since int64, afterKey uint64, max int) ([]core.MigEntry, bool, error) {
	if m, ok := b.get().(migrator); ok {
		return m.ExportRange(match, since, afterKey, max)
	}
	return nil, false, fmt.Errorf("ps: engine %q does not support migration", b.Name())
}

// AdoptEntries forwards the migration adopt hook to the boxed engine. The
// caller fences the node epoch afterwards (ps.Node.adoptRPC); the dynamic
// dispatch hides core.Engine.AdoptEntries' own fence-need contract from
// the analyzer, so it is restated here.
//
// oevet:fence-need
func (b *engineBox) AdoptEntries(entries []core.MigEntry) error {
	if m, ok := b.get().(migrator); ok {
		return m.AdoptEntries(entries)
	}
	return fmt.Errorf("ps: engine %q does not support migration", b.Name())
}

// DropRange forwards the migration drop hook to the boxed engine. Fence
// contract restated across the dynamic dispatch, as for AdoptEntries.
//
// oevet:fence-need
func (b *engineBox) DropRange(match func(key uint64) bool) (int, error) {
	if m, ok := b.get().(migrator); ok {
		return m.DropRange(match)
	}
	return 0, fmt.Errorf("ps: engine %q does not support migration", b.Name())
}

// oevet:fence-need
func (b *engineBox) Scrub() (psengine.ScrubReport, error) {
	if s, ok := b.get().(interface {
		Scrub() (psengine.ScrubReport, error)
	}); ok {
		return s.Scrub()
	}
	return psengine.ScrubReport{}, fmt.Errorf("ps: engine %q does not support scrubbing", b.Name())
}
