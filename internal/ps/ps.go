// Package ps assembles a parameter-server node: a storage engine of a
// chosen kind behind the RPC server, with the PMem device image optionally
// persisted to a file so the node can recover after a restart (Sec. V-C).
//
// A pmem-oe node is restartable in-process: Crash tears down the server
// and engine and drops unpersisted device state, Restart recovers a fresh
// engine from the surviving image and re-serves the same address at a
// bumped epoch (fencing stale clients), and the rollback RPC swaps in an
// engine recovered at an older retained checkpoint for coordinated cluster
// replay (DESIGN.md §10).
package ps

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/engines/dramps"
	"openembedding/internal/engines/oricache"
	"openembedding/internal/engines/pmemhash"
	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/serve"
)

// NodeConfig configures one PS node.
type NodeConfig struct {
	// Engine selects the storage engine: "pmem-oe" (default), "dram-ps",
	// "ori-cache" or "pmem-hash".
	Engine string
	// Store is the psengine configuration.
	Store psengine.Config
	// ArenaSlotsFactor sizes the PMem arena as Capacity * factor records
	// (the headroom holds retained checkpoint versions). Defaults to 3.
	ArenaSlotsFactor int
	// PMemImage, when non-empty, is the file the PMem device image is
	// loaded from (if present) and saved to on Close.
	PMemImage string
	// CheckpointDir configures the incremental checkpointer for the
	// baseline engines.
	CheckpointDir string
	// Inject, when set, arms the deterministic fault injector on the node's
	// RPC server (server-side wire faults). Nil leaves the hot path
	// untouched.
	Inject *faultinject.Injector
	// Label is the injector stream label for this node's server-side
	// connections; it must be deterministic across runs (a node index, not
	// an address). Defaults to "server".
	Label string
	// MediaLabel, when non-empty (and Inject is set), arms the PMem media-
	// fault model on the node's device with this injector stream label:
	// flushes can then rot a bit, be silently dropped, or poison the flushed
	// range, per the injector's rules. Empty leaves media faults off. The
	// label must be deterministic across runs (a node index, not an
	// address). Only meaningful for PMem-backed engines; the model is armed
	// after the arena is formatted and stays armed across Crash/Restart.
	MediaLabel string
	// Obs enables node observability: the registry is handed to the engine
	// (engine_* metrics) and the RPC server (rpc_server_* metrics), and
	// ObsHandler serves it over HTTP. Nil disables all of it.
	Obs *obs.Registry
	// Spans is the node's span ring, handed to the engine; ObsHandler dumps
	// it as Chrome trace JSON. Nil disables tracing.
	Spans *obs.Tracer
	// Serve enables the online inference tier on a pmem-oe node: the RPC
	// server answers MsgPullBag through a serve.Handler over the engine's
	// lock-free snapshot path (DESIGN.md §14). The handler survives
	// Crash/Restart/rollback engine swaps — it is re-wired to whichever
	// engine currently backs the node.
	Serve bool
	// ServeMaxInflight, when positive, arms serving admission control: bag
	// requests arriving while this many are already executing are shed
	// with a busy error (MsgErrBusy on the wire) instead of queueing, so
	// an overloaded or gray-slow node degrades into fast explicit
	// rejections the caller fails over (DESIGN.md §16). Zero disables
	// shedding. Survives Crash/Restart/rollback engine swaps.
	ServeMaxInflight int
}

// Node is one running parameter-server node.
type Node struct {
	cfg NodeConfig
	box *engineBox
	dev *pmem.Device // nil for dram-ps

	// mu guards srv/addr/epoch/crashed across Crash/Restart/rollback.
	// Never held while closing the server (its handler drain would
	// deadlock against a rollback RPC waiting for mu).
	mu      sync.Mutex
	srv     *rpc.Server
	addr    string
	epoch   int64
	crashed bool

	// RecoveredBatch is the checkpoint the engine recovered to when the
	// node started from an existing PMem image (-1 otherwise); Restart
	// updates it to the checkpoint the restarted engine recovered to.
	RecoveredBatch int64

	// lastRecover is the most recent recovery's outcome (zero until the
	// node has recovered at least once). Guarded by mu.
	lastRecover core.RecoverInfo

	// pendingFence records a scrub-driven state loss whose epoch fence has
	// not been applied yet. The engine consumes its loss signal before
	// notifying (scrubLoss.Swap in the maintainer), so the notification
	// must never be dropped: integrityFence sets this BEFORE trying mu and
	// every applier clears it under mu (applyPendingFenceLocked).
	pendingFence atomic.Bool

	// bagSrv is the node's stable MsgPullBag endpoint (nil unless
	// cfg.Serve): the rpc server holds it across engine swaps, and
	// adoptEngine repoints it at a fresh serve.Handler for each adopted
	// engine.
	bagSrv *nodeBagServer

	// replicas is the node's failover replica overlay (nil unless
	// cfg.Serve): rows for keys other nodes own, installed by MsgReplicate
	// and served when a bag read misses the local engine. Long-lived —
	// adoptEngine re-attaches it to each adopted engine's handler, so
	// replicas survive Crash/Restart/rollback.
	replicas *serve.ReplicaStore
}

// nodeBagServer adapts the node's current serve.Handler to rpc.BagServer
// behind an atomic pointer, so the RPC server's hook stays valid across
// Crash/Restart/rollback engine swaps.
type nodeBagServer struct {
	dim int
	h   atomic.Pointer[serve.Handler]
}

func (b *nodeBagServer) Dim() int { return b.dim }

func (b *nodeBagServer) PullBags(mean bool, offsets []uint32, keys []uint64, out []float32) error {
	h := b.h.Load()
	if h == nil {
		return errors.New("ps: serving unavailable")
	}
	return h.PullBags(mean, offsets, keys, out)
}

// StartNode builds the engine (recovering from an existing PMem image when
// one is configured and present) and serves it on addr.
func StartNode(addr string, cfg NodeConfig) (*Node, error) {
	if cfg.Engine == "" {
		cfg.Engine = "pmem-oe"
	}
	if cfg.ArenaSlotsFactor <= 0 {
		cfg.ArenaSlotsFactor = 3
	}
	store := cfg.Store.WithDefaults()
	store.Obs = cfg.Obs
	store.Spans = cfg.Spans
	cfg.Store = store

	n := &Node{cfg: cfg, RecoveredBatch: -1}
	payload := pmem.FloatBytes(store.EntryFloats())
	slots := store.Capacity * cfg.ArenaSlotsFactor

	newDevice := func() (*pmem.Device, bool, error) {
		timed := device.NewTimedPMem(store.Meter)
		if cfg.PMemImage != "" {
			if _, err := os.Stat(cfg.PMemImage); err == nil {
				d, err := pmem.OpenFile(cfg.PMemImage, timed)
				return d, true, err
			}
		}
		return pmem.NewDevice(pmem.ArenaLayout(payload, slots), timed), false, nil
	}

	var engine psengine.Engine
	switch cfg.Engine {
	case "pmem-oe":
		dev, existing, err := newDevice()
		if err != nil {
			return nil, err
		}
		n.dev = dev
		if existing {
			// Media faults armed before recovery: the rebuild scan verifies
			// checksums and must see the fault model a live node would.
			n.armMediaFaults()
			eng, ckpt, err := core.Recover(store, dev)
			if err != nil {
				return nil, fmt.Errorf("ps: recover: %w", err)
			}
			n.adoptEngine(eng)
			engine = eng
			n.RecoveredBatch = ckpt
			n.lastRecover = eng.RecoverInfo()
		} else {
			arena, err := pmem.NewArena(dev, payload, slots)
			if err != nil {
				return nil, err
			}
			// Armed after the arena format (formatting is setup, not a fault
			// target) but before the engine exists, so the engine sees the
			// model and turns on flush verification.
			n.armMediaFaults()
			eng, err := core.New(store, arena)
			if err != nil {
				return nil, err
			}
			n.adoptEngine(eng)
			engine = eng
		}
	case "dram-ps":
		eng, err := dramps.New(store, dramps.Options{CheckpointDir: cfg.CheckpointDir})
		if err != nil {
			return nil, err
		}
		engine = eng
	case "ori-cache":
		dev, _, err := newDevice()
		if err != nil {
			return nil, err
		}
		n.dev = dev
		arena, err := pmem.NewArena(dev, payload, slots)
		if err != nil {
			return nil, err
		}
		eng, err := oricache.New(store, arena, oricache.Options{CheckpointDir: cfg.CheckpointDir})
		if err != nil {
			return nil, err
		}
		engine = eng
	case "pmem-hash":
		dev, _, err := newDevice()
		if err != nil {
			return nil, err
		}
		n.dev = dev
		arena, err := pmem.NewArena(dev, payload, slots)
		if err != nil {
			return nil, err
		}
		eng, err := pmemhash.New(store, arena)
		if err != nil {
			return nil, err
		}
		engine = eng
	default:
		return nil, fmt.Errorf("ps: unknown engine %q", cfg.Engine)
	}
	n.box = newEngineBox(engine)

	srv, err := rpc.ServeOpts(addr, n.box, n.serverOptions())
	if err != nil {
		engine.Close()
		return nil, err
	}
	n.srv = srv
	n.addr = srv.Addr()
	return n, nil
}

func (n *Node) serverOptions() rpc.ServerOptions {
	opts := rpc.ServerOptions{
		Epoch:  n.epoch,
		Inject: n.cfg.Inject,
		Label:  n.cfg.Label,
		Obs:    n.cfg.Obs,
	}
	if n.cfg.Engine == "pmem-oe" {
		opts.Rollback = n.rollbackTo
		opts.Scrub = n.scrubRPC
		opts.Migrate = n.migrateRPC
		opts.Adopt = n.adoptRPC
		opts.Drop = n.dropRPC
		if n.bagSrv != nil {
			opts.Bags = n.bagSrv
			opts.Replicate = n.replicateRPC
		}
	}
	return opts
}

// matchIntervals turns wire hash intervals into the key predicate the
// engine's migration hooks take. rpc.KeyHash is pinned to the cluster
// ring's hash, so the predicate selects exactly the keys the coordinator's
// move plan intends.
func matchIntervals(ivs []rpc.HashInterval) func(key uint64) bool {
	return func(key uint64) bool { return rpc.CoversKey(ivs, key) }
}

// migrateRPC serves MsgMigrateRange: export one page of the moving range.
// A read — no state change, no fence.
func (n *Node) migrateRPC(since int64, afterKey uint64, max int, ivs []rpc.HashInterval) ([]rpc.MigEntry, bool, error) {
	entries, more, err := n.box.ExportRange(matchIntervals(ivs), since, afterKey, max)
	if err != nil {
		return nil, false, err
	}
	out := make([]rpc.MigEntry, len(entries))
	for i, me := range entries {
		out[i] = rpc.MigEntry(me)
	}
	return out, more, nil
}

// adoptRPC serves MsgAdoptRange: install migrated entries (durably), then
// fence the node epoch — clients bound to the pre-migration ownership view
// must re-synchronize before their next batch-protocol request, exactly as
// after a rollback. The coordinator itself re-adopts the epoch on its
// connection right after the flip.
func (n *Node) adoptRPC(entries []rpc.MigEntry) error {
	in := make([]core.MigEntry, len(entries))
	for i, me := range entries {
		in[i] = core.MigEntry(me)
	}
	err := n.box.AdoptEntries(in)
	// Fence even on error: a partial adopt may already have installed
	// entries, changing the served key set.
	n.parkFence()
	n.mu.Lock()
	n.applyPendingFenceLocked()
	n.mu.Unlock()
	return err
}

// dropRPC serves MsgDropRange: remove the moved range — index, cache and
// durable records — then fence the node epoch: the node's key set
// regressed, and any client that still believes the old ownership must be
// rejected rather than repopulate dropped keys.
func (n *Node) dropRPC(ivs []rpc.HashInterval) (int, error) {
	dropped, err := n.box.DropRange(matchIntervals(ivs))
	// Fence even on error: a drop that failed mid-way may already have
	// removed entries.
	if dropped > 0 || err == nil {
		n.parkFence()
		n.mu.Lock()
		n.applyPendingFenceLocked()
		n.mu.Unlock()
	}
	return dropped, err
}

// replicateRPC serves MsgReplicate: install read-only failover replicas in
// the node's overlay. Serving state only — no fence.
func (n *Node) replicateRPC(keys []uint64, rows []float32) error {
	if n.replicas == nil {
		return errors.New("ps: replica serving unavailable")
	}
	return n.replicas.Merge(keys, rows)
}

// armMediaFaults arms the PMem media-fault model on the node's device when
// configured (no-op otherwise).
func (n *Node) armMediaFaults() {
	if n.dev != nil && n.cfg.Inject != nil && n.cfg.MediaLabel != "" {
		n.dev.SetMediaFaults(n.cfg.Inject, n.cfg.MediaLabel)
	}
}

// adoptEngine wires node-level integrity plumbing into a fresh core engine:
// a background scrub round that loses state (restores or fences entries)
// must fence the node's epoch so every client re-synchronizes through the
// recovery protocol before touching the regressed state.
func (n *Node) adoptEngine(eng *core.Engine) {
	eng.SetIntegrityNotify(n.integrityFence)
	if n.cfg.Serve {
		if n.bagSrv == nil {
			n.bagSrv = &nodeBagServer{dim: n.cfg.Store.Dim}
		}
		if n.replicas == nil {
			n.replicas = serve.NewReplicaStore(n.cfg.Store.Dim)
		}
		h := serve.New(eng, n.cfg.Obs)
		h.SetReplicas(n.replicas)
		h.SetMaxInflight(n.cfg.ServeMaxInflight)
		n.bagSrv.h.Store(h)
	}
}

// ServeHandler returns the node's current serving handler (nil unless the
// node was started with NodeConfig.Serve). The handle is engine-specific:
// after a Crash/Restart or rollback, fetch it again.
func (n *Node) ServeHandler() *serve.Handler {
	if n.bagSrv == nil {
		return nil
	}
	return n.bagSrv.h.Load()
}

// integrityFence records and (when possible, immediately) applies an epoch
// fence after scrub-driven state loss. It runs on a maintainer goroutine,
// so it must never block on mu: a concurrent Crash/Close holds mu while
// draining the maintainer pool, and waiting here would deadlock. It must
// also never LOSE the fence — the engine consumed the loss signal before
// notifying (scrubLoss.Swap), and mu's other takers (Addr, Epoch,
// LastRecoverInfo, Close) do not bump the epoch — so the loss is parked in
// pendingFence first and, when TryLock finds mu busy, handed to a detached
// goroutine that may block: the maintainer-pool drain never waits on it,
// and applying late is safe because a crash/restart/rollback that raced
// past bumps the epoch itself (making the parked fence redundant —
// applyPendingFenceLocked drops it on a crashed/closed node) and
// rpc.Server.SetEpoch is an atomic store, valid even after server close.
//
// oevet:fence-obligated
func (n *Node) integrityFence() {
	n.parkFence()
	if n.mu.TryLock() {
		n.applyPendingFenceLocked()
		n.mu.Unlock()
		return
	}
	go func() {
		n.mu.Lock()
		n.applyPendingFenceLocked()
		n.mu.Unlock()
	}()
}

// parkFence parks the node's epoch-fence obligation in pendingFence for a
// later applyPendingFenceLocked (or for any epoch bump, which subsumes it).
// Parking must happen before any attempt on mu so the obligation cannot be
// dropped between "loss observed" and "fence applied" — the exact shape of
// the PR 5 dropped-fence bug.
//
// oevet:fence-park
func (n *Node) parkFence() { n.pendingFence.Store(true) }

// fenceEpochLocked bumps the node epoch, publishes it to the serving RPC
// server, and clears any parked fence the bump subsumes (a bump re-fences
// every client strictly harder than the scrub fence would have). Caller
// holds mu.
//
// oevet:fence-apply
func (n *Node) fenceEpochLocked() {
	n.pendingFence.Store(false)
	n.epoch++
	if n.srv != nil {
		n.srv.SetEpoch(n.epoch)
	}
}

// applyPendingFenceLocked applies a parked integrity fence, if any. Caller
// holds mu. On a crashed node the fence is dropped as redundant: the
// restart/recovery path bumps the epoch itself, which re-fences every
// client strictly harder than the scrub fence would have.
//
// oevet:fence-apply
func (n *Node) applyPendingFenceLocked() {
	if !n.pendingFence.Swap(false) {
		return
	}
	if n.crashed || n.srv == nil {
		return
	}
	n.fenceEpochLocked()
}

// scrubRPC serves MsgScrub: one full integrity pass over the node's
// records. State-losing heals (restored or fenced entries) fence the epoch
// exactly like the background path.
func (n *Node) scrubRPC() (psengine.ScrubReport, error) {
	rep, err := n.box.Scrub()
	// Fence BEFORE surfacing any error: a pass that failed mid-way may
	// already have restored or fenced entries (the report carries the
	// partial counts), and state already lost must fence the epoch even
	// when the surrounding operation fails.
	if rep.Restored+rep.Fenced > 0 {
		n.parkFence()
		n.mu.Lock()
		n.applyPendingFenceLocked()
		n.mu.Unlock()
	}
	return rep, err
}

// LastRecoverInfo reports the most recent recovery's outcome (zero value
// until the node has recovered at least once): which checkpoint it landed
// on and whether corrupt durable header words forced a cur→prev fallback.
func (n *Node) LastRecoverInfo() core.RecoverInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastRecover
}

// ObsHandler returns the node's observability HTTP handler (/metrics,
// /metrics.json, /debug/obs). With no registry or tracer configured it still
// serves well-formed empty documents.
func (n *Node) ObsHandler() http.Handler { return obs.Handler(n.cfg.Obs, n.cfg.Spans) }

// Addr returns the node's bound address (stable across Crash/Restart).
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// Epoch returns the node's current epoch: 0 at start, bumped by every
// Restart and rollback.
func (n *Node) Epoch() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Engine exposes the underlying storage engine (for embedded use). The
// returned handle stays valid across Crash/Restart/rollback — it forwards
// to whichever engine currently backs the node.
func (n *Node) Engine() psengine.Engine { return n.box }

// Crash simulates a node failure in-process: the server stops (every
// client connection drops), the engine is torn down, and unpersisted
// device state is discarded exactly as a power loss would. The PMem image
// survives; Restart recovers from it. Only pmem-oe nodes — whose PMem
// image is crash-consistent by design — support it.
func (n *Node) Crash() error {
	if n.cfg.Engine != "pmem-oe" {
		return fmt.Errorf("ps: crash unsupported for engine %q", n.cfg.Engine)
	}
	n.mu.Lock()
	if n.crashed {
		n.mu.Unlock()
		return fmt.Errorf("ps: node already crashed")
	}
	srv := n.srv
	n.mu.Unlock()
	// Close the server outside mu: its handler drain may include a
	// rollback RPC that needs mu.
	if err := srv.Close(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Drain background maintenance, then drop whatever the "power loss"
	// catches un-persisted. Records and checkpoint IDs were Persisted on
	// write, so the surviving image is exactly the durable state.
	if err := n.box.Close(); err != nil && !errors.Is(err, psengine.ErrClosed) {
		_ = err // the engine state is discarded either way
	}
	n.dev.Crash()
	n.crashed = true
	return nil
}

// Restart recovers a crashed node from its surviving PMem image and
// re-serves the SAME address at a bumped epoch. Clients synchronized to
// the old epoch are fenced on their next batch-protocol request and must
// run the cluster recovery protocol (rollback + AdoptEpoch).
func (n *Node) Restart() (int64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed {
		return -1, fmt.Errorf("ps: restart of a node that is not crashed")
	}
	eng, ckpt, err := core.Recover(n.cfg.Store, n.dev)
	if err != nil {
		return -1, fmt.Errorf("ps: restart: %w", err)
	}
	n.adoptEngine(eng)
	n.lastRecover = eng.RecoverInfo()
	n.box.set(eng)
	// This bump subsumes any fence parked against the old engine's state.
	// (It lands on the closed old server — harmless — and the new server
	// below starts at the bumped epoch via serverOptions.)
	n.fenceEpochLocked()
	srv, err := rpc.ServeOpts(n.addr, n.box, n.serverOptions())
	if err != nil {
		eng.Close()
		return -1, fmt.Errorf("ps: restart: re-listen on %s: %w", n.addr, err)
	}
	n.srv = srv
	n.crashed = false
	n.RecoveredBatch = ckpt
	return ckpt, nil
}

// rollbackTo serves the rollback RPC: it swaps in an engine recovered at
// the requested retained checkpoint and bumps the epoch so every other
// client re-synchronizes before touching the rolled-back state. Idempotent
// — rolling back to the checkpoint the engine is already at is a recovery
// to the same state.
func (n *Node) rollbackTo(target int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed {
		return fmt.Errorf("ps: rollback of a crashed node")
	}
	old := n.box.get()
	if err := old.Close(); err != nil && !errors.Is(err, psengine.ErrClosed) {
		return fmt.Errorf("ps: rollback: draining engine: %w", err)
	}
	eng, _, err := core.RecoverTo(n.cfg.Store, n.dev, target)
	if err != nil {
		//oevet:fence-ok recovery failed before any engine was adopted: the old engine is drained and every request gets ErrClosed, a stronger barrier than an epoch bump
		return fmt.Errorf("ps: rollback to %d: %w", target, err)
	}
	n.adoptEngine(eng)
	n.lastRecover = eng.RecoverInfo()
	n.box.set(eng)
	// This bump subsumes any fence parked against the old engine's state.
	n.fenceEpochLocked()
	return nil
}

// Close stops serving, closes the engine and, when configured, saves the
// PMem image so a restarted node can recover. Closing a crashed node only
// saves the image.
func (n *Node) Close() error {
	n.mu.Lock()
	srv, crashed := n.srv, n.crashed
	n.mu.Unlock()
	var err error
	if !crashed {
		err = srv.Close()
		if cerr := n.box.Close(); err == nil {
			err = cerr
		}
	}
	if n.dev != nil && n.cfg.PMemImage != "" {
		if serr := n.dev.Save(n.cfg.PMemImage); err == nil {
			err = serr
		}
	}
	return err
}
