// Package ps assembles a parameter-server node: a storage engine of a
// chosen kind behind the RPC server, with the PMem device image optionally
// persisted to a file so the node can recover after a restart (Sec. V-C).
package ps

import (
	"fmt"
	"net/http"
	"os"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/engines/dramps"
	"openembedding/internal/engines/oricache"
	"openembedding/internal/engines/pmemhash"
	"openembedding/internal/obs"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
)

// NodeConfig configures one PS node.
type NodeConfig struct {
	// Engine selects the storage engine: "pmem-oe" (default), "dram-ps",
	// "ori-cache" or "pmem-hash".
	Engine string
	// Store is the psengine configuration.
	Store psengine.Config
	// ArenaSlotsFactor sizes the PMem arena as Capacity * factor records
	// (the headroom holds retained checkpoint versions). Defaults to 3.
	ArenaSlotsFactor int
	// PMemImage, when non-empty, is the file the PMem device image is
	// loaded from (if present) and saved to on Close.
	PMemImage string
	// CheckpointDir configures the incremental checkpointer for the
	// baseline engines.
	CheckpointDir string
	// Obs enables node observability: the registry is handed to the engine
	// (engine_* metrics) and the RPC server (rpc_server_* metrics), and
	// ObsHandler serves it over HTTP. Nil disables all of it.
	Obs *obs.Registry
	// Spans is the node's span ring, handed to the engine; ObsHandler dumps
	// it as Chrome trace JSON. Nil disables tracing.
	Spans *obs.Tracer
}

// Node is one running parameter-server node.
type Node struct {
	cfg    NodeConfig
	engine psengine.Engine
	dev    *pmem.Device // nil for dram-ps
	srv    *rpc.Server

	// RecoveredBatch is the checkpoint the engine recovered to when the
	// node started from an existing PMem image (-1 otherwise).
	RecoveredBatch int64
}

// StartNode builds the engine (recovering from an existing PMem image when
// one is configured and present) and serves it on addr.
func StartNode(addr string, cfg NodeConfig) (*Node, error) {
	if cfg.Engine == "" {
		cfg.Engine = "pmem-oe"
	}
	if cfg.ArenaSlotsFactor <= 0 {
		cfg.ArenaSlotsFactor = 3
	}
	store := cfg.Store.WithDefaults()
	store.Obs = cfg.Obs
	store.Spans = cfg.Spans
	cfg.Store = store

	n := &Node{cfg: cfg, RecoveredBatch: -1}
	payload := pmem.FloatBytes(store.EntryFloats())
	slots := store.Capacity * cfg.ArenaSlotsFactor

	newDevice := func() (*pmem.Device, bool, error) {
		timed := device.NewTimedPMem(store.Meter)
		if cfg.PMemImage != "" {
			if _, err := os.Stat(cfg.PMemImage); err == nil {
				d, err := pmem.OpenFile(cfg.PMemImage, timed)
				return d, true, err
			}
		}
		return pmem.NewDevice(pmem.ArenaLayout(payload, slots), timed), false, nil
	}

	switch cfg.Engine {
	case "pmem-oe":
		dev, existing, err := newDevice()
		if err != nil {
			return nil, err
		}
		n.dev = dev
		if existing {
			eng, ckpt, err := core.Recover(store, dev)
			if err != nil {
				return nil, fmt.Errorf("ps: recover: %w", err)
			}
			n.engine = eng
			n.RecoveredBatch = ckpt
		} else {
			arena, err := pmem.NewArena(dev, payload, slots)
			if err != nil {
				return nil, err
			}
			eng, err := core.New(store, arena)
			if err != nil {
				return nil, err
			}
			n.engine = eng
		}
	case "dram-ps":
		eng, err := dramps.New(store, dramps.Options{CheckpointDir: cfg.CheckpointDir})
		if err != nil {
			return nil, err
		}
		n.engine = eng
	case "ori-cache":
		dev, _, err := newDevice()
		if err != nil {
			return nil, err
		}
		n.dev = dev
		arena, err := pmem.NewArena(dev, payload, slots)
		if err != nil {
			return nil, err
		}
		eng, err := oricache.New(store, arena, oricache.Options{CheckpointDir: cfg.CheckpointDir})
		if err != nil {
			return nil, err
		}
		n.engine = eng
	case "pmem-hash":
		dev, _, err := newDevice()
		if err != nil {
			return nil, err
		}
		n.dev = dev
		arena, err := pmem.NewArena(dev, payload, slots)
		if err != nil {
			return nil, err
		}
		eng, err := pmemhash.New(store, arena)
		if err != nil {
			return nil, err
		}
		n.engine = eng
	default:
		return nil, fmt.Errorf("ps: unknown engine %q", cfg.Engine)
	}

	srv, err := rpc.ServeOpts(addr, n.engine, rpc.ServerOptions{Obs: cfg.Obs})
	if err != nil {
		n.engine.Close()
		return nil, err
	}
	n.srv = srv
	return n, nil
}

// ObsHandler returns the node's observability HTTP handler (/metrics,
// /metrics.json, /debug/obs). With no registry or tracer configured it still
// serves well-formed empty documents.
func (n *Node) ObsHandler() http.Handler { return obs.Handler(n.cfg.Obs, n.cfg.Spans) }

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.srv.Addr() }

// Engine exposes the underlying storage engine (for embedded use).
func (n *Node) Engine() psengine.Engine { return n.engine }

// Close stops serving, closes the engine and, when configured, saves the
// PMem image so a restarted node can recover.
func (n *Node) Close() error {
	err := n.srv.Close()
	if cerr := n.engine.Close(); err == nil {
		err = cerr
	}
	if n.dev != nil && n.cfg.PMemImage != "" {
		if serr := n.dev.Save(n.cfg.PMemImage); err == nil {
			err = serr
		}
	}
	return err
}
