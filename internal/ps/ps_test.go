package ps

import (
	"path/filepath"
	"testing"

	"openembedding/internal/optim"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
)

func nodeConfig() NodeConfig {
	return NodeConfig{
		Store: psengine.Config{
			Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 1024, CacheEntries: 32,
		},
	}
}

func driveBatch(t *testing.T, cl *rpc.Client, batch int64, keys []uint64, grads []float32) []float32 {
	t.Helper()
	w, err := cl.Pull(batch, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.EndPullPhase(batch); err != nil {
		t.Fatal(err)
	}
	if grads != nil {
		if err := cl.Push(batch, keys, grads); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.EndBatch(batch); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestStartNodeAllEngines(t *testing.T) {
	for _, engine := range []string{"pmem-oe", "dram-ps", "ori-cache", "pmem-hash"} {
		t.Run(engine, func(t *testing.T) {
			cfg := nodeConfig()
			cfg.Engine = engine
			cfg.CheckpointDir = filepath.Join(t.TempDir(), "ckpt")
			n, err := StartNode("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			if n.Engine().Name() == "" {
				t.Fatal("engine has no name")
			}
			cl, err := rpc.Dial(n.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			w := driveBatch(t, cl, 0, []uint64{1, 2}, make([]float32, 8))
			if len(w) != 8 {
				t.Fatalf("pull returned %d floats", len(w))
			}
		})
	}
}

func TestStartNodeUnknownEngine(t *testing.T) {
	cfg := nodeConfig()
	cfg.Engine = "bogus"
	if _, err := StartNode("127.0.0.1:0", cfg); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestNodeRestartRecovers is the operational crash-restart loop: train,
// checkpoint, stop (which saves the PMem image), start again, verify the
// node recovered the checkpointed state.
func TestNodeRestartRecovers(t *testing.T) {
	image := filepath.Join(t.TempDir(), "shard.img")
	cfg := nodeConfig()
	cfg.PMemImage = image

	n, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := rpc.Dial(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{7, 8}
	grads := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	driveBatch(t, cl, 0, keys, grads)
	driveBatch(t, cl, 1, keys, grads)
	if err := cl.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	want := driveBatch(t, cl, 2, keys, nil) // post-batch-1 state
	cl.Close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := StartNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.RecoveredBatch != 1 {
		t.Fatalf("recovered batch = %d, want 1", re.RecoveredBatch)
	}
	cl2, err := rpc.Dial(re.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	got := driveBatch(t, cl2, 2, keys, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recovered[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
