// Package optim implements the server-side optimizers applied when workers
// push gradients for sparse embedding entries (the classic parameter-server
// split: dense parameters are optimized on the GPU workers, sparse entries
// on the PS nodes).
//
// Each optimizer declares how many float32s of per-entry state it needs;
// the engines co-locate that state with the weights, both in the DRAM cache
// and in the PMem record, so a checkpoint captures the complete training
// state of an entry.
package optim

import (
	"fmt"
	"math"
)

// Optimizer updates one embedding entry's weights from a gradient.
// Implementations must be safe for concurrent use on distinct entries.
type Optimizer interface {
	// Name identifies the optimizer in logs and checkpoint metadata.
	Name() string
	// StateFloats is the number of per-entry state float32s for an entry of
	// the given dimension.
	StateFloats(dim int) int
	// InitState initializes a fresh entry's state in place.
	InitState(state []float32)
	// Apply updates weights in place given grad and the entry's state.
	// len(weights) == len(grad) == dim; len(state) == StateFloats(dim).
	Apply(weights, state, grad []float32)
}

// SGD is plain stochastic gradient descent: w -= lr * g. It keeps no
// per-entry state.
type SGD struct {
	// LR is the learning rate.
	LR float32
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float32) SGD { return SGD{LR: lr} }

// Name implements Optimizer.
func (SGD) Name() string { return "sgd" }

// StateFloats implements Optimizer.
func (SGD) StateFloats(int) int { return 0 }

// InitState implements Optimizer.
func (SGD) InitState([]float32) {}

// Apply implements Optimizer.
func (o SGD) Apply(weights, _, grad []float32) {
	for i := range weights {
		weights[i] -= o.LR * grad[i]
	}
}

// AdaGrad is the adaptive-gradient optimizer commonly used for DLRM sparse
// features: per-coordinate accumulated squared gradients scale the step.
type AdaGrad struct {
	// LR is the base learning rate.
	LR float32
	// Eps avoids division by zero; typically 1e-8.
	Eps float32
	// InitAccum is the initial accumulator value (0.1 in many DLRM setups).
	InitAccum float32
}

// NewAdaGrad returns an AdaGrad optimizer with conventional defaults.
func NewAdaGrad(lr float32) AdaGrad {
	return AdaGrad{LR: lr, Eps: 1e-8, InitAccum: 0.1}
}

// Name implements Optimizer.
func (AdaGrad) Name() string { return "adagrad" }

// StateFloats implements Optimizer: one accumulator per coordinate.
func (AdaGrad) StateFloats(dim int) int { return dim }

// InitState implements Optimizer.
func (o AdaGrad) InitState(state []float32) {
	for i := range state {
		state[i] = o.InitAccum
	}
}

// Apply implements Optimizer.
func (o AdaGrad) Apply(weights, state, grad []float32) {
	for i := range weights {
		g := grad[i]
		state[i] += g * g
		weights[i] -= o.LR * g / (float32(math.Sqrt(float64(state[i]))) + o.Eps)
	}
}

// ByName constructs a registered optimizer from its name, for CLI flags and
// checkpoint metadata.
func ByName(name string, lr float32) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr), nil
	case "adagrad":
		return NewAdaGrad(lr), nil
	default:
		return nil, fmt.Errorf("optim: unknown optimizer %q", name)
	}
}
