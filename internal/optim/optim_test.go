package optim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSGDApply(t *testing.T) {
	o := NewSGD(0.5)
	w := []float32{1, 2}
	o.Apply(w, nil, []float32{2, -2})
	if w[0] != 0 || w[1] != 3 {
		t.Fatalf("w = %v", w)
	}
	if o.StateFloats(64) != 0 {
		t.Fatal("SGD should be stateless")
	}
}

func TestAdaGradDecreasingSteps(t *testing.T) {
	o := NewAdaGrad(0.1)
	dim := 1
	w := []float32{0}
	state := make([]float32, o.StateFloats(dim))
	o.InitState(state)

	var steps []float64
	prev := float64(w[0])
	for i := 0; i < 5; i++ {
		o.Apply(w, state, []float32{1})
		steps = append(steps, math.Abs(float64(w[0])-prev))
		prev = float64(w[0])
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] >= steps[i-1] {
			t.Fatalf("AdaGrad step %d (%g) not smaller than previous (%g)", i, steps[i], steps[i-1])
		}
	}
}

func TestAdaGradInitState(t *testing.T) {
	o := NewAdaGrad(0.1)
	state := make([]float32, 4)
	o.InitState(state)
	for _, v := range state {
		if v != o.InitAccum {
			t.Fatalf("state = %v", state)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sgd", "adagrad"} {
		o, err := ByName(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() != name {
			t.Fatalf("Name = %q, want %q", o.Name(), name)
		}
	}
	if _, err := ByName("adam", 0.01); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

// TestOptimizerReducesQuadraticLoss: both optimizers must make progress on
// min ||w - target||^2, the sanity property the training loop depends on.
func TestOptimizerReducesQuadraticLoss(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.05), NewAdaGrad(0.5)} {
		t.Run(o.Name(), func(t *testing.T) {
			target := []float32{1, -2, 3, 0.5}
			w := make([]float32, len(target))
			state := make([]float32, o.StateFloats(len(target)))
			o.InitState(state)
			loss := func() float64 {
				var s float64
				for i := range w {
					d := float64(w[i] - target[i])
					s += d * d
				}
				return s
			}
			initial := loss()
			grad := make([]float32, len(target))
			for step := 0; step < 200; step++ {
				for i := range grad {
					grad[i] = 2 * (w[i] - target[i])
				}
				o.Apply(w, state, grad)
			}
			if final := loss(); final > initial/10 {
				t.Fatalf("loss %g -> %g: no convergence", initial, final)
			}
		})
	}
}

// TestSGDLinearityProperty: SGD applied to a zero gradient never changes
// weights, and the update is linear in the gradient.
func TestSGDLinearityProperty(t *testing.T) {
	o := NewSGD(0.1)
	f := func(w0, g float32) bool {
		if math.IsNaN(float64(w0)) || math.IsNaN(float64(g)) ||
			math.IsInf(float64(w0), 0) || math.IsInf(float64(g), 0) {
			return true
		}
		w := []float32{w0}
		o.Apply(w, nil, []float32{0})
		if w[0] != w0 {
			return false
		}
		o.Apply(w, nil, []float32{g})
		return w[0] == w0-0.1*g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
