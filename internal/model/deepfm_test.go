package model

import (
	"math"
	"math/rand"
	"testing"
)

func smallConfig() DeepFMConfig {
	return DeepFMConfig{Fields: 3, Dim: 4, Dense: 2, Hidden: []int{8}, LR: 0.05, Seed: 1}
}

func randomBatch(rng *rand.Rand, cfg DeepFMConfig, n int) (emb, dense, labels []float32) {
	emb = make([]float32, n*cfg.Fields*cfg.Dim)
	dense = make([]float32, n*cfg.Dense)
	labels = make([]float32, n)
	for i := range emb {
		emb[i] = float32(rng.NormFloat64()) * 0.5
	}
	for i := range dense {
		dense[i] = float32(rng.NormFloat64())
	}
	for i := range labels {
		if rng.Float64() < 0.4 {
			labels[i] = 1
		}
	}
	return
}

func TestStepShapeValidation(t *testing.T) {
	m := NewDeepFM(smallConfig())
	if _, _, err := m.Step(make([]float32, 5), make([]float32, 2), make([]float32, 1)); err == nil {
		t.Fatal("bad emb size accepted")
	}
	if _, _, err := m.Step(make([]float32, 12), make([]float32, 5), make([]float32, 1)); err == nil {
		t.Fatal("bad dense size accepted")
	}
	if _, err := m.Predict(make([]float32, 3), make([]float32, 2), 1); err == nil {
		t.Fatal("bad predict size accepted")
	}
}

// TestEmbeddingGradientNumerically verifies the analytic embedding gradient
// against central finite differences of the loss.
func TestEmbeddingGradientNumerically(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(2))
	emb, dense, labels := randomBatch(rng, cfg, 3)

	// Fresh model per loss evaluation (Step mutates parameters; use Loss).
	m := NewDeepFM(cfg)
	_, grad, err := m.Step(append([]float32(nil), emb...), dense, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild an identical model for the finite-difference probes.
	probe := NewDeepFM(cfg)

	const h = 1e-3
	checks := []int{0, 5, len(emb) - 1, len(emb) / 2}
	for _, idx := range checks {
		plus := append([]float32(nil), emb...)
		minus := append([]float32(nil), emb...)
		plus[idx] += h
		minus[idx] -= h
		lp, err := probe.Loss(plus, dense, labels)
		if err != nil {
			t.Fatal(err)
		}
		lm, err := probe.Loss(minus, dense, labels)
		if err != nil {
			t.Fatal(err)
		}
		numeric := (lp - lm) / (2 * h)
		analytic := float64(grad[idx])
		if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d]: analytic %g vs numeric %g", idx, analytic, numeric)
		}
	}
}

// TestTrainingReducesLoss trains the dense part on a fixed batch (with
// fixed embeddings) of *learnable* labels — a linear function of the first
// dense feature — and expects the loss to drop substantially. (Random
// labels would bottom out at their ~0.67 entropy.)
func TestTrainingReducesLoss(t *testing.T) {
	cfg := smallConfig()
	rng := rand.New(rand.NewSource(3))
	emb, dense, labels := randomBatch(rng, cfg, 64)
	for i := range labels {
		labels[i] = 0
		if dense[i*cfg.Dense] > 0 {
			labels[i] = 1
		}
	}
	m := NewDeepFM(cfg)
	first, _, err := m.Step(emb, dense, labels)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 200; i++ {
		last, _, err = m.Step(emb, dense, labels)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last > first*0.7 {
		t.Fatalf("loss %g -> %g: dense training not converging", first, last)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m1 := NewDeepFM(smallConfig())
	cfg := smallConfig()
	cfg.Seed = 99 // different init
	m2 := NewDeepFM(cfg)
	if err := m2.SetParams(m1.Params()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	emb, dense, _ := randomBatch(rng, smallConfig(), 4)
	p1, err := m1.Predict(emb, dense, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.Predict(emb, dense, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("predictions diverge after SetParams: %v vs %v", p1, p2)
		}
	}
	if err := m2.SetParams(make([]float32, 3)); err == nil {
		t.Fatal("short param vector accepted")
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect predictions give near-zero loss; inverted give large loss.
	good := LogLoss([]float32{0.999, 0.001}, []float32{1, 0})
	bad := LogLoss([]float32{0.001, 0.999}, []float32{1, 0})
	if good > 0.01 || bad < 3 {
		t.Fatalf("logloss good=%g bad=%g", good, bad)
	}
	if LogLoss(nil, nil) != 0 {
		t.Fatal("empty logloss not 0")
	}
	// Clamping keeps extreme predictions finite.
	if v := LogLoss([]float32{0}, []float32{1}); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("unclamped logloss: %v", v)
	}
}

func TestAUC(t *testing.T) {
	if got := AUC([]float32{0.9, 0.8, 0.2, 0.1}, []float32{1, 1, 0, 0}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	if got := AUC([]float32{0.1, 0.2, 0.8, 0.9}, []float32{1, 1, 0, 0}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	if got := AUC([]float32{0.5, 0.5, 0.5, 0.5}, []float32{1, 0, 1, 0}); got != 0.5 {
		t.Fatalf("all-ties AUC = %v", got)
	}
	if got := AUC([]float32{0.3}, []float32{1}); got != 0.5 {
		t.Fatalf("degenerate AUC = %v", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	preds := make([]float32, 5000)
	labels := make([]float32, 5000)
	for i := range preds {
		preds[i] = rng.Float32()
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
	}
	if got := AUC(preds, labels); math.Abs(got-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ~0.5", got)
	}
}
