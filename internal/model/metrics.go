package model

import (
	"math"
	"sort"
)

// logLossOne is the binary cross-entropy of one prediction, clamped away
// from 0 and 1 for numerical safety.
func logLossOne(p, y float64) float64 {
	const eps = 1e-7
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	if y >= 0.5 {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// LogLoss returns the mean binary cross-entropy of predictions against
// labels.
func LogLoss(preds, labels []float32) float64 {
	if len(preds) == 0 {
		return 0
	}
	var total float64
	for i := range preds {
		total += logLossOne(float64(preds[i]), float64(labels[i]))
	}
	return total / float64(len(preds))
}

// AUC computes the area under the ROC curve via the rank statistic
// (probability a random positive scores above a random negative, ties
// counted half).
func AUC(preds, labels []float32) float64 {
	type pair struct {
		p float32
		y float32
	}
	pairs := make([]pair, len(preds))
	for i := range preds {
		pairs[i] = pair{preds[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].p < pairs[j].p })

	var pos, neg float64
	for _, pr := range pairs {
		if pr.y >= 0.5 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Sum of ranks of positives, averaging ranks within tie groups.
	var rankSum float64
	i := 0
	rank := 1.0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].p == pairs[i].p {
			j++
		}
		avgRank := rank + float64(j-i-1)/2
		for k := i; k < j; k++ {
			if pairs[k].y >= 0.5 {
				rankSum += avgRank
			}
		}
		rank += float64(j - i)
		i = j
	}
	return (rankSum - pos*(pos+1)/2) / (pos * neg)
}
