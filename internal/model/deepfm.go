// Package model implements the dense part of the DLRM the evaluation
// trains: DeepFM [36] — a factorization machine over the field embeddings
// plus a multi-layer perceptron — with real float32 forward/backward math.
//
// In the paper this part runs on the GPU workers; here it runs on the CPU.
// The parameter-server experiments only need its *interaction pattern*
// (pull embeddings, compute, push gradients) plus a calibrated per-batch
// compute time, but a real trainable model keeps the functional path honest:
// examples/ctr_deepfm shows the loss actually decreasing through the full
// PS stack.
package model

import (
	"fmt"
	"math"
	"math/rand"
)

// DeepFMConfig sizes a DeepFM model.
type DeepFMConfig struct {
	// Fields is the number of categorical fields (one embedding per field
	// per example).
	Fields int
	// Dim is the embedding dimension.
	Dim int
	// Dense is the number of continuous features.
	Dense int
	// Hidden lists the MLP hidden-layer widths. Defaults to [64, 32].
	Hidden []int
	// LR is the learning rate for the dense parameters (plain SGD).
	LR float32
	// Seed initializes the dense parameters.
	Seed int64
}

func (c DeepFMConfig) withDefaults() DeepFMConfig {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 32}
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	return c
}

// layer is one fully connected layer.
type layer struct {
	in, out int
	w       []float32 // out x in, row-major
	b       []float32
}

// DeepFM is the dense model. It is not safe for concurrent use; in
// data-parallel training each worker owns a replica and gradients are
// averaged (the Horovod allreduce of the paper's setup, which
// internal/train performs).
type DeepFM struct {
	cfg    DeepFMConfig
	layers []layer // MLP over [embeddings ++ dense], final layer scalar
	wDense []float32
	bias   float32
}

// NewDeepFM builds a model with Xavier-initialized dense parameters.
func NewDeepFM(cfg DeepFMConfig) *DeepFM {
	cfg = cfg.withDefaults()
	if cfg.Fields <= 0 || cfg.Dim <= 0 {
		panic("model: Fields and Dim must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &DeepFM{cfg: cfg, wDense: make([]float32, cfg.Dense)}
	for i := range m.wDense {
		m.wDense[i] = float32(rng.NormFloat64()) * 0.1
	}
	in := cfg.Fields*cfg.Dim + cfg.Dense
	widths := append(append([]int{}, cfg.Hidden...), 1)
	for _, out := range widths {
		l := layer{in: in, out: out, w: make([]float32, in*out), b: make([]float32, out)}
		bound := float32(math.Sqrt(6 / float64(in+out)))
		for i := range l.w {
			l.w[i] = (rng.Float32()*2 - 1) * bound
		}
		m.layers = append(m.layers, l)
		in = out
	}
	return m
}

// Config returns the model configuration (defaults applied).
func (m *DeepFM) Config() DeepFMConfig { return m.cfg }

// InputFloats returns the embedding floats one example consumes
// (Fields * Dim).
func (m *DeepFM) InputFloats() int { return m.cfg.Fields * m.cfg.Dim }

// forwardOne runs one example, returning the logit and the activations
// needed for backprop.
type forwardState struct {
	input []float32   // embeddings ++ dense
	acts  [][]float32 // post-ReLU activations per layer (last = linear out)
	fmSum []float32   // sum of field embedding vectors
	fm    float32     // second-order FM term
}

func (m *DeepFM) forwardOne(emb, dense []float32) forwardState {
	cfg := m.cfg
	st := forwardState{}

	// FM second order: 0.5 * (||sum_f v_f||^2 - sum_f ||v_f||^2).
	st.fmSum = make([]float32, cfg.Dim)
	var sumSq float32
	for f := 0; f < cfg.Fields; f++ {
		v := emb[f*cfg.Dim : (f+1)*cfg.Dim]
		for d, x := range v {
			st.fmSum[d] += x
			sumSq += x * x
		}
	}
	var normSq float32
	for _, x := range st.fmSum {
		normSq += x * x
	}
	st.fm = 0.5 * (normSq - sumSq)

	// MLP over [embeddings ++ dense].
	st.input = make([]float32, len(emb)+len(dense))
	copy(st.input, emb)
	copy(st.input[len(emb):], dense)
	a := st.input
	for li, l := range m.layers {
		out := make([]float32, l.out)
		for o := 0; o < l.out; o++ {
			s := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range a {
				s += row[i] * x
			}
			if li < len(m.layers)-1 && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			out[o] = s
		}
		st.acts = append(st.acts, out)
		a = out
	}
	return st
}

// logit combines the model terms for one forward state plus the dense
// linear part.
func (m *DeepFM) logit(st forwardState, dense []float32) float32 {
	z := m.bias + st.fm + st.acts[len(st.acts)-1][0]
	for i, x := range dense {
		z += m.wDense[i] * x
	}
	return z
}

func sigmoid(z float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(z))))
}

// Step trains on one mini-batch. emb holds the pulled embeddings, one
// example after another (n * Fields * Dim floats); dense holds n * Dense
// floats; labels holds n values in {0, 1}.
//
// It returns the mean log loss and the gradient of the loss with respect to
// every embedding input (same layout as emb) for pushing back to the
// parameter server. Dense parameters are updated in place with SGD.
func (m *DeepFM) Step(emb, dense, labels []float32) (float64, []float32, error) {
	cfg := m.cfg
	n := len(labels)
	if len(emb) != n*cfg.Fields*cfg.Dim {
		return 0, nil, fmt.Errorf("model: emb has %d floats, want %d", len(emb), n*cfg.Fields*cfg.Dim)
	}
	if len(dense) != n*cfg.Dense {
		return 0, nil, fmt.Errorf("model: dense has %d floats, want %d", len(dense), n*cfg.Dense)
	}

	embGrad := make([]float32, len(emb))
	// Accumulated dense-parameter gradients (applied after the batch).
	gW := make([][]float32, len(m.layers))
	gB := make([][]float32, len(m.layers))
	for li, l := range m.layers {
		gW[li] = make([]float32, len(l.w))
		gB[li] = make([]float32, len(l.b))
	}
	gDense := make([]float32, cfg.Dense)
	var gBias float32
	var totalLoss float64

	for ex := 0; ex < n; ex++ {
		embEx := emb[ex*cfg.Fields*cfg.Dim : (ex+1)*cfg.Fields*cfg.Dim]
		denseEx := dense[ex*cfg.Dense : (ex+1)*cfg.Dense]
		st := m.forwardOne(embEx, denseEx)
		z := m.logit(st, denseEx)
		p := sigmoid(z)
		y := labels[ex]
		totalLoss += logLossOne(float64(p), float64(y))

		// dLoss/dz for sigmoid + BCE.
		dz := (p - y) / float32(n)
		gBias += dz
		for i, x := range denseEx {
			gDense[i] += dz * x
		}

		// FM second-order gradient: d fm / d v_f = fmSum - v_f.
		gEmbEx := embGrad[ex*cfg.Fields*cfg.Dim : (ex+1)*cfg.Fields*cfg.Dim]
		for f := 0; f < cfg.Fields; f++ {
			v := embEx[f*cfg.Dim : (f+1)*cfg.Dim]
			g := gEmbEx[f*cfg.Dim : (f+1)*cfg.Dim]
			for d := range v {
				g[d] += dz * (st.fmSum[d] - v[d])
			}
		}

		// MLP backprop.
		delta := []float32{dz} // gradient at the (linear) output layer
		for li := len(m.layers) - 1; li >= 0; li-- {
			l := m.layers[li]
			var aPrev []float32
			if li == 0 {
				aPrev = st.input
			} else {
				aPrev = st.acts[li-1]
			}
			next := make([]float32, l.in)
			for o := 0; o < l.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				row := l.w[o*l.in : (o+1)*l.in]
				gRow := gW[li][o*l.in : (o+1)*l.in]
				for i, x := range aPrev {
					gRow[i] += d * x
					next[i] += d * row[i]
				}
				gB[li][o] += d
			}
			if li > 0 {
				// ReLU gate of the previous layer.
				for i, a := range aPrev {
					if a <= 0 {
						next[i] = 0
					}
				}
			}
			delta = next
		}
		// delta now holds dLoss/dInput; its embedding prefix adds to the
		// embedding gradient.
		for i := 0; i < cfg.Fields*cfg.Dim; i++ {
			gEmbEx[i] += delta[i]
		}
	}

	// Apply SGD to the dense parameters.
	lr := cfg.LR
	for li := range m.layers {
		l := &m.layers[li]
		for i := range l.w {
			l.w[i] -= lr * gW[li][i]
		}
		for i := range l.b {
			l.b[i] -= lr * gB[li][i]
		}
	}
	for i := range m.wDense {
		m.wDense[i] -= lr * gDense[i]
	}
	m.bias -= lr * gBias

	return totalLoss / float64(n), embGrad, nil
}

// Predict returns click probabilities for a batch without updating
// parameters.
func (m *DeepFM) Predict(emb, dense []float32, n int) ([]float32, error) {
	cfg := m.cfg
	if len(emb) != n*cfg.Fields*cfg.Dim || len(dense) != n*cfg.Dense {
		return nil, fmt.Errorf("model: predict buffer sizes wrong")
	}
	out := make([]float32, n)
	for ex := 0; ex < n; ex++ {
		embEx := emb[ex*cfg.Fields*cfg.Dim : (ex+1)*cfg.Fields*cfg.Dim]
		denseEx := dense[ex*cfg.Dense : (ex+1)*cfg.Dense]
		st := m.forwardOne(embEx, denseEx)
		out[ex] = sigmoid(m.logit(st, denseEx))
	}
	return out, nil
}

// Loss computes the mean log loss of predictions against labels without a
// gradient pass.
func (m *DeepFM) Loss(emb, dense, labels []float32) (float64, error) {
	p, err := m.Predict(emb, dense, len(labels))
	if err != nil {
		return 0, err
	}
	var total float64
	for i := range labels {
		total += logLossOne(float64(p[i]), float64(labels[i]))
	}
	return total / float64(len(labels)), nil
}

// Params returns a flat copy of every dense parameter (used by the
// allreduce in data-parallel training and by dense checkpointing).
func (m *DeepFM) Params() []float32 {
	var out []float32
	for _, l := range m.layers {
		out = append(out, l.w...)
		out = append(out, l.b...)
	}
	out = append(out, m.wDense...)
	out = append(out, m.bias)
	return out
}

// SetParams overwrites every dense parameter from a flat slice produced by
// Params.
func (m *DeepFM) SetParams(p []float32) error {
	want := len(m.Params())
	if len(p) != want {
		return fmt.Errorf("model: SetParams got %d floats, want %d", len(p), want)
	}
	off := 0
	for li := range m.layers {
		l := &m.layers[li]
		off += copy(l.w, p[off:off+len(l.w)])
		off += copy(l.b, p[off:off+len(l.b)])
	}
	off += copy(m.wDense, p[off:off+len(m.wDense)])
	m.bias = p[off]
	return nil
}
