package cluster

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/ps"
	"openembedding/internal/rpc"
)

// startClusterOpts is startCluster with explicit dial options, returning the
// nodes so a test can kill one mid-batch.
func startClusterOpts(t *testing.T, engine string, nodes int, opts Options) (*Client, []*ps.Node) {
	t.Helper()
	var addrs []string
	var ns []*ps.Node
	for i := 0; i < nodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine:        engine,
			Store:         storeConfig(),
			CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
		ns = append(ns, n)
	}
	c, err := DialOpts(4, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, ns
}

// keysForAllNodes returns count keys spread so every node owns at least one.
func keysForAllNodes(t *testing.T, nodes, count int) []uint64 {
	t.Helper()
	owned := make([]bool, nodes)
	var keys []uint64
	for k := uint64(0); len(keys) < count; k++ {
		n := Partition(k, nodes)
		if !owned[n] || len(keys) >= nodes {
			owned[n] = true
			keys = append(keys, k)
		}
	}
	for n, ok := range owned {
		if !ok {
			t.Fatalf("no key found for node %d", n)
		}
	}
	return keys
}

// TestFanOutNodeFailure kills one server mid-batch and checks that the next
// Pull and Push fail promptly with an error naming the dead node, instead of
// hanging the whole fan-out.
func TestFanOutNodeFailure(t *testing.T) {
	cl, nodes := startClusterOpts(t, "dram-ps", 3, Options{
		RPC: rpc.Options{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second},
	})
	keys := keysForAllNodes(t, 3, 9)
	dst := make([]float32, len(keys)*4)
	grads := make([]float32, len(keys)*4)

	// Batch 0 succeeds with all nodes alive.
	if err := cl.Pull(0, keys, dst); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Push(0, keys, grads); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndBatch(0); err != nil {
		t.Fatal(err)
	}

	// Kill node 1's server between batches.
	dead := 1
	deadAddr := nodes[dead].Addr()
	if err := nodes[dead].Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err := cl.Pull(1, keys, dst)
	if err == nil {
		t.Fatal("pull succeeded with a dead node")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("pull took %v to notice the dead node", elapsed)
	}
	want := fmt.Sprintf("node %d (%s)", dead, deadAddr)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("pull error %q does not name %q", err, want)
	}

	// Push against the poisoned connection also fails fast, attributed.
	start = time.Now()
	err = cl.Push(1, keys, grads)
	if err == nil {
		t.Fatal("push succeeded with a dead node")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("push took %v to notice the dead node", elapsed)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("push error %q does not name %q", err, want)
	}
}

// TestFanOutHungNodeTimesOut replaces one node with a listener that accepts
// and never responds: the fan-out must surface the typed rpc timeout after
// the configured read deadline, attributed to the silent node, and keep
// errors.Is(err, rpc.ErrTimeout) working through the wrapper.
func TestFanOutHungNodeTimesOut(t *testing.T) {
	real, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
		Engine:        "dram-ps",
		Store:         storeConfig(),
		CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { real.Close() })

	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := hung.Accept()
			if err != nil {
				return
			}
			go func() { <-done; conn.Close() }()
		}
	}()

	cl, err := DialOpts(4, []string{real.Addr(), hung.Addr().String()}, Options{
		RPC: rpc.Options{ReadTimeout: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	keys := keysForAllNodes(t, 2, 4)
	dst := make([]float32, len(keys)*4)
	start := time.Now()
	err = cl.Pull(0, keys, dst)
	if err == nil {
		t.Fatal("pull succeeded with a silent node")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pull took %v, read deadline was 150ms", elapsed)
	}
	if !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("error %v lost ErrTimeout through the cluster wrapper", err)
	}
	var te *rpc.TimeoutError
	if !errors.As(err, &te) || te.Op != "pull" {
		t.Fatalf("error %v is not a pull *TimeoutError", err)
	}
	if want := fmt.Sprintf("node 1 (%s)", hung.Addr()); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
}

// TestClusterMetricsAndSpans checks the worker-side fan-out metrics and
// per-batch spans populate during a normal batch.
func TestClusterMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(256)
	cl, _ := startClusterOpts(t, "dram-ps", 3, Options{Obs: reg, Spans: tr})
	keys := keysForAllNodes(t, 3, 9)
	dst := make([]float32, len(keys)*4)
	grads := make([]float32, len(keys)*4)

	for b := int64(0); b < 2; b++ {
		if err := cl.Pull(b, keys, dst); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndPullPhase(b); err != nil {
			t.Fatal(err)
		}
		if err := cl.Push(b, keys, grads); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	s := reg.Snapshot()
	if got := s.Histograms["cluster_pull_ns"].Count; got != 2 {
		t.Errorf("cluster_pull_ns count = %d, want 2", got)
	}
	if got := s.Histograms["cluster_push_ns"].Count; got != 2 {
		t.Errorf("cluster_push_ns count = %d, want 2", got)
	}
	// Width: every pull and push touched all 3 nodes.
	fw := s.Histograms["cluster_fanout_width"]
	if fw.Count != 4 || fw.Max != 3 {
		t.Errorf("cluster_fanout_width = %+v, want count 4 max 3", fw)
	}
	if got := s.Histograms["cluster_straggler_ns"].Count; got != 4 {
		t.Errorf("cluster_straggler_ns count = %d, want 4", got)
	}

	var pulls, nodeSpans int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "cluster.pull":
			pulls++
		case "cluster.node":
			nodeSpans++
		}
	}
	if pulls != 2 {
		t.Errorf("cluster.pull spans = %d, want 2", pulls)
	}
	if nodeSpans != 12 { // 3 nodes x (pull+push) x 2 batches
		t.Errorf("cluster.node spans = %d, want 12", nodeSpans)
	}
}
