package cluster

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/ps"
	"openembedding/internal/rpc"
)

// startClusterOpts is startCluster with explicit dial options, returning the
// nodes so a test can kill one mid-batch.
func startClusterOpts(t *testing.T, engine string, nodes int, opts Options) (*Client, []*ps.Node) {
	t.Helper()
	var addrs []string
	var ns []*ps.Node
	for i := 0; i < nodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine:        engine,
			Store:         storeConfig(),
			CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
		ns = append(ns, n)
	}
	c, err := DialOpts(4, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, ns
}

// keysForAllNodes returns count keys spread so every node owns at least
// one under the default ring placement (a fresh cluster's ring is
// NewRing(0..nodes-1), so ownership is computable without a client).
func keysForAllNodes(t *testing.T, nodes, count int) []uint64 {
	t.Helper()
	ids := make([]uint64, nodes)
	for i := range ids {
		ids[i] = uint64(i)
	}
	ring := NewRing(ids)
	owned := make([]bool, nodes)
	var keys []uint64
	for k := uint64(0); len(keys) < count; k++ {
		n := ring.Owner(k)
		if !owned[n] || len(keys) >= nodes {
			owned[n] = true
			keys = append(keys, k)
		}
	}
	for n, ok := range owned {
		if !ok {
			t.Fatalf("no key found for node %d", n)
		}
	}
	return keys
}

// TestFanOutNodeFailure kills one server mid-batch and checks that the next
// Pull and Push fail promptly with an error naming the dead node, instead of
// hanging the whole fan-out.
func TestFanOutNodeFailure(t *testing.T) {
	cl, nodes := startClusterOpts(t, "dram-ps", 3, Options{
		RPC: rpc.Options{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second},
	})
	keys := keysForAllNodes(t, 3, 9)
	dst := make([]float32, len(keys)*4)
	grads := make([]float32, len(keys)*4)

	// Batch 0 succeeds with all nodes alive.
	if err := cl.Pull(0, keys, dst); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Push(0, keys, grads); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndBatch(0); err != nil {
		t.Fatal(err)
	}

	// Kill node 1's server between batches.
	dead := 1
	deadAddr := nodes[dead].Addr()
	if err := nodes[dead].Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err := cl.Pull(1, keys, dst)
	if err == nil {
		t.Fatal("pull succeeded with a dead node")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("pull took %v to notice the dead node", elapsed)
	}
	want := fmt.Sprintf("node %d (%s)", dead, deadAddr)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("pull error %q does not name %q", err, want)
	}

	// Push against the poisoned connection also fails fast, attributed.
	start = time.Now()
	err = cl.Push(1, keys, grads)
	if err == nil {
		t.Fatal("push succeeded with a dead node")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("push took %v to notice the dead node", elapsed)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("push error %q does not name %q", err, want)
	}
}

// TestFanOutHungNodeTimesOut replaces one node with a listener that accepts
// and never responds: the fan-out must surface the typed rpc timeout after
// the configured read deadline, attributed to the silent node, and keep
// errors.Is(err, rpc.ErrTimeout) working through the wrapper.
func TestFanOutHungNodeTimesOut(t *testing.T) {
	real, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
		Engine:        "dram-ps",
		Store:         storeConfig(),
		CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { real.Close() })

	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := hung.Accept()
			if err != nil {
				return
			}
			go func() { <-done; conn.Close() }()
		}
	}()

	cl, err := DialOpts(4, []string{real.Addr(), hung.Addr().String()}, Options{
		RPC: rpc.Options{ReadTimeout: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	keys := keysForAllNodes(t, 2, 4)
	dst := make([]float32, len(keys)*4)
	start := time.Now()
	err = cl.Pull(0, keys, dst)
	if err == nil {
		t.Fatal("pull succeeded with a silent node")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pull took %v, read deadline was 150ms", elapsed)
	}
	if !errors.Is(err, rpc.ErrTimeout) {
		t.Fatalf("error %v lost ErrTimeout through the cluster wrapper", err)
	}
	var te *rpc.TimeoutError
	if !errors.As(err, &te) || te.Op != "pull" {
		t.Fatalf("error %v is not a pull *TimeoutError", err)
	}
	if want := fmt.Sprintf("node 1 (%s)", hung.Addr()); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
}

// TestClusterRecoverAfterCrash exercises the coordinated recovery
// protocol end to end: a node crash-restarts (losing un-checkpointed
// state), the next fan-out fails recoverably, and Recover(commit) rolls
// every node — healthy ones included — back to the cluster-wide committed
// checkpoint so a replay resumes from a consistent state.
func TestClusterRecoverAfterCrash(t *testing.T) {
	reg := obs.NewRegistry()
	store := storeConfig()
	store.RetainCheckpoints = 2
	var addrs []string
	var ns []*ps.Node
	for i := 0; i < 3; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{Engine: "pmem-oe", Store: store})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
		ns = append(ns, n)
	}
	cl, err := DialOpts(4, addrs, Options{
		RPC: rpc.Options{
			Retry:        rpc.RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond},
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	keys := keysForAllNodes(t, 3, 9)
	grads := make([]float32, len(keys)*4)
	for i := range grads {
		grads[i] = 1.0
	}
	runBatch := func(b int64) []float32 {
		t.Helper()
		dst := make([]float32, len(keys)*4)
		if err := cl.Pull(b, keys, dst); err != nil {
			t.Fatalf("pull %d: %v", b, err)
		}
		if err := cl.EndPullPhase(b); err != nil {
			t.Fatal(err)
		}
		if err := cl.Push(b, keys, grads); err != nil {
			t.Fatalf("push %d: %v", b, err)
		}
		if err := cl.EndBatch(b); err != nil {
			t.Fatal(err)
		}
		return dst
	}

	runBatch(0)
	if err := cl.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done, err := cl.CompletedCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if done >= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint 0 never committed cluster-wide")
		}
	}

	// Batch 1 trains past the checkpoint; its updates will be lost and
	// replayed. Record the state the replay must see again.
	atCkpt := runBatch(1)

	if err := ns[1].Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := ns[1].Restart(); err != nil {
		t.Fatal(err)
	}

	_, err = func() ([]float32, error) {
		dst := make([]float32, len(keys)*4)
		return dst, cl.Pull(2, keys, dst)
	}()
	if err == nil {
		t.Fatal("pull succeeded against a restarted, fenced node")
	}
	if !cl.Recoverable(err) {
		t.Fatalf("crash-induced failure not Recoverable: %v", err)
	}

	commit, err := cl.CompletedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if commit != 0 {
		t.Fatalf("cluster commit = %d, want 0", commit)
	}
	if err := cl.Recover(commit); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := reg.Snapshot().Counters["cluster_replays"]; got != 1 {
		t.Fatalf("cluster_replays = %d, want 1", got)
	}

	// Replaying batch 1 pulls exactly the state the first attempt saw:
	// every node — including the two that never crashed — rewound to the
	// checkpoint.
	replayed := make([]float32, len(keys)*4)
	if err := cl.Pull(1, keys, replayed); err != nil {
		t.Fatalf("pull after recover: %v", err)
	}
	for i := range replayed {
		if replayed[i] != atCkpt[i] {
			t.Fatalf("replayed[%d] = %v, want %v (bit-exact)", i, replayed[i], atCkpt[i])
		}
	}
	for i, n := range ns {
		if n.Epoch() < 1 {
			t.Errorf("node %d epoch = %d, want >= 1 after recovery", i, n.Epoch())
		}
	}
}

// TestClusterMetricsAndSpans checks the worker-side fan-out metrics and
// per-batch spans populate during a normal batch.
func TestClusterMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(256)
	cl, _ := startClusterOpts(t, "dram-ps", 3, Options{Obs: reg, Spans: tr})
	keys := keysForAllNodes(t, 3, 9)
	dst := make([]float32, len(keys)*4)
	grads := make([]float32, len(keys)*4)

	for b := int64(0); b < 2; b++ {
		if err := cl.Pull(b, keys, dst); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndPullPhase(b); err != nil {
			t.Fatal(err)
		}
		if err := cl.Push(b, keys, grads); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	s := reg.Snapshot()
	if got := s.Histograms["cluster_pull_ns"].Count; got != 2 {
		t.Errorf("cluster_pull_ns count = %d, want 2", got)
	}
	if got := s.Histograms["cluster_push_ns"].Count; got != 2 {
		t.Errorf("cluster_push_ns count = %d, want 2", got)
	}
	// Width: every pull and push touched all 3 nodes.
	fw := s.Histograms["cluster_fanout_width"]
	if fw.Count != 4 || fw.Max != 3 {
		t.Errorf("cluster_fanout_width = %+v, want count 4 max 3", fw)
	}
	if got := s.Histograms["cluster_straggler_ns"].Count; got != 4 {
		t.Errorf("cluster_straggler_ns count = %d, want 4", got)
	}

	var pulls, nodeSpans int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "cluster.pull":
			pulls++
		case "cluster.node":
			nodeSpans++
		}
	}
	if pulls != 2 {
		t.Errorf("cluster.pull spans = %d, want 2", pulls)
	}
	if nodeSpans != 12 { // 3 nodes x (pull+push) x 2 batches
		t.Errorf("cluster.node spans = %d, want 12", nodeSpans)
	}
}
