// Package cluster is the worker-side view of a multi-node parameter
// server: embedding entries are partitioned across PS nodes by hashing
// their IDs (Sec. IV), and each pull/push fans out to the owning nodes in
// parallel and reassembles the responses in input order.
package cluster

import (
	"fmt"
	"sync"

	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
)

// Partition returns the node index owning key among n nodes: the same
// multiplicative hash the engines use for shard selection, reduced modulo
// the node count.
func Partition(key uint64, n int) int {
	return int((key * 0x9e3779b97f4a7c15) >> 32 % uint64(n))
}

// Client is a partitioned parameter-server client.
type Client struct {
	dim   int
	nodes []*rpc.Client
}

// Dial connects to every node address. dim must match the server engines.
func Dial(dim int, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no node addresses")
	}
	c := &Client{dim: dim}
	for _, a := range addrs {
		cl, err := rpc.Dial(a)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, cl)
	}
	return c, nil
}

// Nodes returns the node count.
func (c *Client) Nodes() int { return len(c.nodes) }

// Dim returns the embedding dimension.
func (c *Client) Dim() int { return c.dim }

// plan groups the caller's keys by owning node, remembering each key's
// original position for reassembly.
type plan struct {
	keys [][]uint64
	pos  [][]int
}

func (c *Client) plan(keys []uint64) plan {
	p := plan{keys: make([][]uint64, len(c.nodes)), pos: make([][]int, len(c.nodes))}
	for i, k := range keys {
		n := Partition(k, len(c.nodes))
		p.keys[n] = append(p.keys[n], k)
		p.pos[n] = append(p.pos[n], i)
	}
	return p
}

// fanOut runs fn for every node with a non-empty key group, concurrently,
// and returns the first error.
func (c *Client) fanOut(p plan, fn func(node int, keys []uint64, pos []int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for n := range c.nodes {
		if len(p.keys[n]) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			errs[n] = fn(n, p.keys[n], p.pos[n])
		}(n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pull fetches weights for keys into dst (len(keys)*dim floats), routing
// each key to its owning node.
func (c *Client) Pull(batch int64, keys []uint64, dst []float32) error {
	if err := psengine.CheckBuf(keys, dst, c.dim); err != nil {
		return err
	}
	p := c.plan(keys)
	return c.fanOut(p, func(n int, nodeKeys []uint64, pos []int) error {
		vals, err := c.nodes[n].Pull(batch, nodeKeys)
		if err != nil {
			return err
		}
		if len(vals) != len(nodeKeys)*c.dim {
			return fmt.Errorf("cluster: node %d returned %d floats for %d keys", n, len(vals), len(nodeKeys))
		}
		for i, orig := range pos {
			copy(dst[orig*c.dim:(orig+1)*c.dim], vals[i*c.dim:(i+1)*c.dim])
		}
		return nil
	})
}

// Push routes gradients to the owning nodes.
func (c *Client) Push(batch int64, keys []uint64, grads []float32) error {
	if err := psengine.CheckBuf(keys, grads, c.dim); err != nil {
		return err
	}
	p := c.plan(keys)
	return c.fanOut(p, func(n int, nodeKeys []uint64, pos []int) error {
		nodeGrads := make([]float32, len(nodeKeys)*c.dim)
		for i, orig := range pos {
			copy(nodeGrads[i*c.dim:(i+1)*c.dim], grads[orig*c.dim:(orig+1)*c.dim])
		}
		return c.nodes[n].Push(batch, nodeKeys, nodeGrads)
	})
}

// broadcast runs fn on every node concurrently and returns the first error.
func (c *Client) broadcast(fn func(*rpc.Client) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *rpc.Client) {
			defer wg.Done()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EndPullPhase signals pull completion on every node.
func (c *Client) EndPullPhase(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.EndPullPhase(batch) })
}

// EndBatch seals batch on every node.
func (c *Client) EndBatch(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.EndBatch(batch) })
}

// RequestCheckpoint asks every node to checkpoint batch.
func (c *Client) RequestCheckpoint(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.RequestCheckpoint(batch) })
}

// CompletedCheckpoint returns the cluster-wide durable checkpoint: the
// minimum over nodes (a checkpoint only counts when every shard has it).
func (c *Client) CompletedCheckpoint() (int64, error) {
	min := int64(1<<62 - 1)
	for _, n := range c.nodes {
		v, err := n.CompletedCheckpoint()
		if err != nil {
			return -1, err
		}
		if v < min {
			min = v
		}
	}
	return min, nil
}

// Stats sums the counters across nodes.
func (c *Client) Stats() (psengine.Stats, error) {
	var total psengine.Stats
	for _, n := range c.nodes {
		st, err := n.Stats()
		if err != nil {
			return total, err
		}
		total.Entries += st.Entries
		total.CachedEntries += st.CachedEntries
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.PMemReads += st.PMemReads
		total.PMemWrites += st.PMemWrites
		total.Evictions += st.Evictions
		total.CheckpointsDone += st.CheckpointsDone
	}
	return total, nil
}

// Close closes every node connection.
func (c *Client) Close() error {
	var first error
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
