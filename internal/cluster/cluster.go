// Package cluster is the worker-side view of a multi-node parameter
// server: embedding entries are partitioned across PS nodes by hashing
// their IDs (Sec. IV), and each pull/push fans out to the owning nodes in
// parallel and reassembles the responses in input order.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/serve"
)

// Partition returns the node index owning key among n nodes: the same
// multiplicative hash the engines use for shard selection, reduced modulo
// the node count. This is the legacy fixed-membership placement
// (PlacementModulo); the default placement is the consistent-hash ring
// (ring.go), which moves only ~1/N of keys on membership change.
func Partition(key uint64, n int) int {
	return int((key * 0x9e3779b97f4a7c15) >> 32 % uint64(n))
}

// Placement selects the key-placement scheme.
type Placement int

const (
	// PlacementRing (the default) places keys on a consistent-hash ring
	// with virtual nodes, versioned by an ownership epoch; membership can
	// change live (Join/Leave) and reads fail over to R=2 replicas.
	PlacementRing Placement = iota
	// PlacementModulo is the legacy fixed-membership modulo placement:
	// no migration, no replicas, bit-compatible with pre-elasticity
	// deployments and BENCH series.
	PlacementModulo
)

// Options configures a cluster Client.
type Options struct {
	// RPC is forwarded to every per-node rpc.DialOpts call (I/O deadlines,
	// retry policy, client-side RPC metrics). Each node's copy gets a
	// deterministic injector label ("node<i>", unless RPC.Label is set) and
	// a per-node retry jitter seed derived from RPC.Retry.Seed and the node
	// index, so a seeded chaos run replays identically.
	RPC rpc.Options
	// Inject, when set, arms the deterministic fault injector on every
	// per-node connection (client-side dial and wire faults). Nil leaves
	// the hot path untouched.
	Inject *faultinject.Injector
	// Obs, when set, receives worker-side fan-out metrics:
	// cluster_fanout_width (nodes contacted per pull/push),
	// cluster_straggler_ns (slowest minus fastest node per fan-out),
	// cluster_pull_ns / cluster_push_ns end-to-end latency.
	Obs *obs.Registry
	// Spans, when set, records per-batch cluster spans: cluster.pull /
	// cluster.push parents with per-node cluster.node children.
	Spans *obs.Tracer
	// Placement selects key placement: PlacementRing (default, elastic)
	// or PlacementModulo (legacy fixed membership).
	Placement Placement
	// HedgeDelay, when positive, arms hedged replica reads in PullBags:
	// if a node's bag request has not answered within HedgeDelay, one
	// hedged request is issued to the keys' replica nodes and the first
	// success wins. Zero disables hedging; hard failures still fail over.
	HedgeDelay time.Duration
	// Detector, when set, arms the suspicion-based failure detector
	// (detector.go): dedicated per-node probe connections feed
	// inter-arrival accrual, and PullBags preempts reads to suspected
	// owners — failing over to replicas (and the stale tier) before the
	// gray-failed owner's read deadline burns. Probe cadence is driven by
	// Probe calls (deterministic soaks) or StartProber (wall clock).
	Detector *DetectorConfig
	// Breakers, when set, gives every per-node connection its own circuit
	// breaker (rpc.Breaker defaults): consecutive transport failures to a
	// node make later calls fail fast — immediately eligible for failover
	// — instead of re-paying dial and read deadlines per request.
	Breakers bool
	// Stale, when set, is the degraded-serving fallback tier: PullBags
	// tracks its hot keys there, RefreshStale snapshots their rows, and a
	// read whose owner AND replicas are all degraded is answered from the
	// tier — flagged stale via PullBagsResult — instead of erroring.
	Stale *serve.StaleTier
	// Clock is the failure detector's time source. Nil defaults to the
	// obs registry's monotonic clock (or a process-monotonic fallback);
	// deterministic soaks pass the virtual clock so suspicion transitions
	// replay with the run.
	Clock func() time.Duration
}

// Client is a partitioned parameter-server client.
//
// Membership changes (Join/Leave, migrate.go) mutate the node tables and
// must not race other calls on the same Client: the coordinator that
// reshapes the cluster is the one training driver, so the methods here
// stay lock-free. Concurrent serving frontends use their own Clients.
type Client struct {
	dim   int
	nodes []*rpc.Client
	addrs []string
	spans *obs.Tracer

	// ring is the ownership table under PlacementRing (nil under
	// PlacementModulo). Stored atomically so concurrent PullBags readers
	// observe a consistent ring while a Join/Leave flips the epoch.
	ring atomic.Pointer[Ring]
	// ids are the stable ring identities of c.nodes, index-aligned;
	// nextID is the identity the next joiner receives. Identities are
	// never reused, so a membership history replays to the same ring.
	ids    []uint64
	nextID uint64
	// dialOpts reproduces DialOpts' per-node connection setup for nodes
	// that join later.
	dialOpts   Options
	hedgeDelay time.Duration
	// migrateHook, when set by tests, runs between migration copy rounds
	// (round index, last sealed batch) and returns the new last sealed
	// batch — the hook may train, forcing delta rounds.
	migrateHook func(round int, batch int64) int64

	// Gray-failure machinery (all nil/zero unless armed via Options).
	// healthMu guards probes and proberStop — the only Client state the
	// background prober goroutine shares with Join/Leave and Close.
	det        *Detector
	nowFn      func() time.Duration
	stale      *serve.StaleTier
	healthMu   sync.Mutex
	probes     []*rpc.Client
	proberStop func()

	// metrics (nil, and free, without Options.Obs)
	fanWidth    *obs.Histogram
	straggler   *obs.Histogram
	pullNS      *obs.Histogram
	pushNS      *obs.Histogram
	bagNS       *obs.Histogram
	migrationNS *obs.Histogram
	replays     *obs.Counter
	migrations  *obs.Counter
	migKeys     *obs.Counter
	failovers   *obs.Counter
	foHard      *obs.Counter
	foSuspect   *obs.Counter
	foHedge     *obs.Counter
	hedged      *obs.Counter
	reg         *obs.Registry
}

// Dial connects to every node address with default options. dim must match
// the server engines.
func Dial(dim int, addrs []string) (*Client, error) {
	return DialOpts(dim, addrs, Options{})
}

// DialOpts connects to every node address with explicit options.
func DialOpts(dim int, addrs []string, opts Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no node addresses")
	}
	c := &Client{
		dim:        dim,
		addrs:      append([]string(nil), addrs...),
		spans:      opts.Spans,
		dialOpts:   opts,
		hedgeDelay: opts.HedgeDelay,
	}
	if reg := opts.Obs; reg != nil {
		c.reg = reg
		c.fanWidth = reg.Histogram("cluster_fanout_width")
		c.straggler = reg.Histogram("cluster_straggler_ns")
		c.pullNS = reg.Histogram("cluster_pull_ns")
		c.pushNS = reg.Histogram("cluster_push_ns")
		c.bagNS = reg.Histogram("cluster_pullbag_ns")
		c.migrationNS = reg.Histogram("cluster_migration_ns")
		c.replays = reg.Counter("cluster_replays")
		c.migrations = reg.Counter("cluster_migrations")
		c.migKeys = reg.Counter("cluster_migrated_keys")
		c.failovers = reg.Counter("cluster_failovers")
		c.foHard = reg.Counter("cluster_failovers_hard")
		c.foSuspect = reg.Counter("cluster_failovers_suspect")
		c.foHedge = reg.Counter("cluster_failovers_hedge")
		c.hedged = reg.Counter("cluster_hedged_reads")
	}
	// Detector time source: explicit Clock > obs monotonic clock >
	// process-monotonic fallback.
	c.nowFn = opts.Clock
	if c.nowFn == nil {
		if c.reg != nil {
			c.nowFn = c.reg.Now
		} else {
			base := time.Now()
			c.nowFn = func() time.Duration { return time.Since(base) }
		}
	}
	c.stale = opts.Stale
	c.stale.SetObs(opts.Obs)
	opts.RPC.Budget.SetObs(opts.Obs)
	for n, a := range addrs {
		cl, err := c.dialNode(a, n)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d (%s): %w", n, a, err)
		}
		c.nodes = append(c.nodes, cl)
		c.ids = append(c.ids, uint64(n))
	}
	c.nextID = uint64(len(addrs))
	if opts.Placement == PlacementRing {
		c.ring.Store(NewRing(c.ids))
	}
	if opts.Detector != nil {
		c.det = NewDetector(len(c.nodes), *opts.Detector, opts.Obs)
		c.resizeHealth()
	}
	return c, nil
}

// dialNode opens one per-node connection with the client's stored options:
// a deterministic injector label ("node<i>") and a per-node retry jitter
// seed, so seeded chaos runs replay identically even after joins.
func (c *Client) dialNode(addr string, n int) (*rpc.Client, error) {
	ro := c.dialOpts.RPC
	if c.dialOpts.Inject != nil {
		ro.Inject = c.dialOpts.Inject
	}
	if ro.Label == "" {
		ro.Label = fmt.Sprintf("node%d", n)
	}
	// Distinct per-node jitter streams from one configured seed.
	ro.Retry.Seed ^= uint64(n) * 0x9e3779b97f4a7c15
	// The breaker is per-peer state; the budget (already in ro) is shared
	// across all of this Client's nodes by construction.
	if c.dialOpts.Breakers && ro.Breaker == nil {
		bk := rpc.NewBreaker(0, 0)
		bk.SetObs(c.reg)
		ro.Breaker = bk
	}
	return rpc.DialOpts(addr, ro)
}

// dialProbe opens node n's dedicated health-probe connection: its own
// injector stream ("node<i>/probe", so probe traffic never perturbs the
// data connections' deterministic fault streams), single attempts with
// redial-on-demand, the detector's short probe timeout, and no budget or
// breaker — a probe IS the health check, it must always reach the wire.
func (c *Client) dialProbe(addr string, n int) (*rpc.Client, error) {
	ro := c.dialOpts.RPC
	if c.dialOpts.Inject != nil {
		ro.Inject = c.dialOpts.Inject
	}
	ro.Label = fmt.Sprintf("node%d/probe", n)
	ro.Retry = rpc.RetryPolicy{MaxAttempts: 1}
	ro.Budget = nil
	ro.Breaker = nil
	ro.Obs = nil // probe RTTs would skew the data-path client metrics
	if c.det != nil {
		ro.DialTimeout = c.det.cfg.ProbeTimeout
		ro.ReadTimeout = c.det.cfg.ProbeTimeout
		ro.WriteTimeout = c.det.cfg.ProbeTimeout
	}
	return rpc.DialOpts(addr, ro)
}

// resizeHealth realigns the failure detector and the probe connections
// with the current node table (initial dial, Join, Leave). Per-index
// accrual state resets: membership changed, so old indexes are
// meaningless. A node whose probe connection cannot even be set up is
// left unobserved — never-observed nodes are not suspected, and hard
// errors on its data connection speak for themselves.
func (c *Client) resizeHealth() {
	if c.det == nil {
		return
	}
	c.det.Resize(len(c.nodes))
	c.healthMu.Lock()
	old := c.probes
	c.probes = nil
	c.healthMu.Unlock()
	for _, p := range old {
		if p != nil {
			p.Close()
		}
	}
	probes := make([]*rpc.Client, len(c.addrs))
	for n, a := range c.addrs {
		if p, err := c.dialProbe(a, n); err == nil {
			probes[n] = p
		}
	}
	c.healthMu.Lock()
	c.probes = probes
	c.healthMu.Unlock()
}

// Probe runs one health round: every node is pinged in parallel on its
// dedicated probe connection, successful answers feed the detector's
// accrual state, and suspicion is re-evaluated for every node so the
// cluster_suspicions counter and suspected gauge advance at probe
// cadence. Deterministic soaks call Probe explicitly between virtual
// clock advances; wall-clock deployments use StartProber.
func (c *Client) Probe() {
	if c.det == nil {
		return
	}
	c.healthMu.Lock()
	probes := c.probes
	c.healthMu.Unlock()
	ok := make([]bool, len(probes))
	var wg sync.WaitGroup
	for i, p := range probes {
		if p == nil {
			continue
		}
		wg.Add(1)
		go func(i int, p *rpc.Client) {
			defer wg.Done()
			ok[i] = p.Ping() == nil
		}(i, p)
	}
	wg.Wait()
	now := c.nowFn()
	for i, healthy := range ok {
		if healthy {
			c.det.Observe(i, now)
		}
	}
	for i := range ok {
		c.det.Suspected(i, now)
	}
}

// StartProber runs Probe every interval (the detector's Interval when
// interval <= 0) on a background goroutine until the returned stop
// function is called; Close stops it too. Wall-clock deployments only —
// deterministic soaks drive Probe explicitly against the virtual clock.
func (c *Client) StartProber(interval time.Duration) (stop func()) {
	if c.det == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = c.det.cfg.Interval
	}
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	c.healthMu.Lock()
	c.proberStop = stop
	c.healthMu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.Probe()
			}
		}
	}()
	return stop
}

// Suspected reports whether the failure detector currently suspects node
// n (always false without Options.Detector).
func (c *Client) Suspected(n int) bool { return c.suspectedNow(n) }

func (c *Client) suspectedNow(n int) bool {
	if c.det == nil {
		return false
	}
	return c.det.Suspected(n, c.nowFn())
}

// ownerOf returns the node index owning key under the active placement.
func (c *Client) ownerOf(key uint64) int {
	if r := c.ring.Load(); r != nil {
		return r.Owner(key)
	}
	return Partition(key, len(c.nodes))
}

// Epoch returns the current ownership epoch (0 under PlacementModulo,
// which never changes membership).
func (c *Client) Epoch() int64 {
	if r := c.ring.Load(); r != nil {
		return r.Epoch()
	}
	return 0
}

// Nodes returns the node count.
func (c *Client) Nodes() int { return len(c.nodes) }

// Owner returns the node index owning key under the active placement —
// the exported view oectl ring uses to show the key distribution.
func (c *Client) Owner(key uint64) int { return c.ownerOf(key) }

// NodeHealth probes node n with the health RPC (fence-exempt) and reports
// its epoch, serving status, and round-trip time.
func (c *Client) NodeHealth(n int) (rpc.NodeHealth, error) {
	if n < 0 || n >= len(c.nodes) {
		return rpc.NodeHealth{}, fmt.Errorf("cluster: node %d out of range [0,%d)", n, len(c.nodes))
	}
	return c.nodes[n].PingInfo()
}

// Dim returns the embedding dimension.
func (c *Client) Dim() int { return c.dim }

// nodeErr attributes a per-node failure so a worker log names the failed
// shard server, not just "connection reset".
func (c *Client) nodeErr(n int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("cluster: node %d (%s): %w", n, c.addrs[n], err)
}

// plan groups the caller's keys by owning node, remembering each key's
// original position for reassembly.
type plan struct {
	keys [][]uint64
	pos  [][]int
}

func (c *Client) plan(keys []uint64) plan {
	p := plan{keys: make([][]uint64, len(c.nodes)), pos: make([][]int, len(c.nodes))}
	for i, k := range keys {
		n := c.ownerOf(k)
		p.keys[n] = append(p.keys[n], k)
		p.pos[n] = append(p.pos[n], i)
	}
	return p
}

// fanOut runs fn for every node with a non-empty key group, concurrently,
// and returns the first error (attributed to its node). When metrics are
// enabled it also records the fan-out width and the straggler gap — the
// spread between the fastest and slowest node of this request, the quantity
// the paper's batched barrier is sensitive to.
func (c *Client) fanOut(batch int64, p plan, fn func(node int, keys []uint64, pos []int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	durs := make([]time.Duration, len(c.nodes))
	width := 0
	for n := range c.nodes {
		if len(p.keys[n]) == 0 {
			continue
		}
		width++
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var start time.Duration
			if c.reg != nil {
				start = c.reg.Now()
			}
			sp := c.spans.Start("cluster.node", "cluster", int64(n), batch)
			errs[n] = fn(n, p.keys[n], p.pos[n])
			sp.EndArg("keys", int64(len(p.keys[n])))
			if c.reg != nil {
				durs[n] = c.reg.Now() - start
			}
		}(n)
	}
	wg.Wait()
	if c.reg != nil && width > 0 {
		c.fanWidth.ObserveValue(int64(width))
		min, max := time.Duration(1<<62), time.Duration(0)
		for n, d := range durs {
			if len(p.keys[n]) == 0 {
				continue
			}
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		c.straggler.Observe(max - min)
	}
	for n, err := range errs {
		if err != nil {
			return c.nodeErr(n, err)
		}
	}
	return nil
}

// Pull fetches weights for keys into dst (len(keys)*dim floats), routing
// each key to its owning node.
func (c *Client) Pull(batch int64, keys []uint64, dst []float32) error {
	if err := psengine.CheckBuf(keys, dst, c.dim); err != nil {
		return err
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	sp := c.spans.Start("cluster.pull", "cluster", -1, batch)
	p := c.plan(keys)
	err := c.fanOut(batch, p, func(n int, nodeKeys []uint64, pos []int) error {
		vals, err := c.nodes[n].Pull(batch, nodeKeys)
		if err != nil {
			return err
		}
		if len(vals) != len(nodeKeys)*c.dim {
			return fmt.Errorf("returned %d floats for %d keys", len(vals), len(nodeKeys))
		}
		for i, orig := range pos {
			copy(dst[orig*c.dim:(orig+1)*c.dim], vals[i*c.dim:(i+1)*c.dim])
		}
		return nil
	})
	sp.EndArg("keys", int64(len(keys)))
	if c.reg != nil && err == nil {
		c.pullNS.Observe(c.reg.Now() - start)
	}
	return err
}

// PullBags gathers pooled embedding bags across the cluster (the serving
// tier's read path): bag b is keys[offsets[b]:offsets[b+1]], pooled into
// out[b*dim:(b+1)*dim] — sum, or mean when mean is set. Each bag's keys
// are partitioned to their owning nodes, every contacted node pools its
// share server-side (always sum mode on the wire), and the partial sums
// are combined here in node-index order — a deterministic float-addition
// order, so repeated gathers of the same state agree bit-for-bit. Mean is
// applied client-side over each bag's full key count.
//
// Under PlacementRing a node that fails with a degraded error —
// transport failure, timeout, shed (busy) or an open breaker — is failed
// over: its keys are regrouped by their per-key replica node
// (failover.go) and re-read there, so one dead node costs latency, not
// errors. With Options.HedgeDelay set, a node that is merely slow gets
// one hedged replica read after the deadline. With Options.Detector, a
// *suspected* owner is preempted entirely. PullBags drops the staleness
// flag; serving frontends that must distinguish degraded answers use
// PullBagsResult.
func (c *Client) PullBags(mean bool, offsets []uint32, keys []uint64, out []float32) error {
	_, err := c.PullBagsResult(mean, offsets, keys, out)
	return err
}

// BagResult describes how a PullBagsResult answer was produced.
type BagResult struct {
	// Stale is set when any node's share was answered from the stale
	// fallback tier (owner and replicas all degraded) rather than live
	// state: the pooled values are no fresher than the tier's last
	// RefreshStale pass, and keys never refreshed contributed zero.
	Stale bool
}

// PullBagsResult is PullBags plus degradation visibility: the gather
// succeeds whenever live owners, replicas, or the stale tier can answer,
// and the result reports whether any share came back stale.
func (c *Client) PullBagsResult(mean bool, offsets []uint32, keys []uint64, out []float32) (BagResult, error) {
	if err := rpc.ValidateBagOffsets(offsets, len(keys)); err != nil {
		return BagResult{}, err
	}
	bags := len(offsets) - 1
	if len(out) != bags*c.dim {
		return BagResult{}, fmt.Errorf("cluster: out has %d floats, want %d (%d bags x dim %d)",
			len(out), bags*c.dim, bags, c.dim)
	}
	// Feed the stale tier's hot set from live serving traffic (no-op
	// without Options.Stale).
	c.stale.Track(keys)
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	ring := c.ring.Load()
	nn := len(c.nodes)
	nodeKeys := make([][]uint64, nn)
	nodeOffs := make([][]uint32, nn)
	for n := range nodeOffs {
		nodeOffs[n] = make([]uint32, 1, bags+1)
	}
	for b := 0; b < bags; b++ {
		for _, k := range keys[offsets[b]:offsets[b+1]] {
			n := c.ownerOf(k)
			nodeKeys[n] = append(nodeKeys[n], k)
		}
		for n := range nodeOffs {
			nodeOffs[n] = append(nodeOffs[n], uint32(len(nodeKeys[n])))
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, nn)
	parts := make([][]float32, nn)
	stales := make([]bool, nn)
	for n := 0; n < nn; n++ {
		if len(nodeKeys[n]) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			parts[n], stales[n], errs[n] = c.bagRequest(ring, n, bags, nodeOffs[n], nodeKeys[n])
		}(n)
	}
	wg.Wait()
	for n, err := range errs {
		if err != nil {
			return BagResult{}, c.nodeErr(n, err)
		}
	}
	var res BagResult
	for _, s := range stales {
		if s {
			res.Stale = true
		}
	}
	clear(out)
	for n := 0; n < nn; n++ {
		if parts[n] == nil {
			continue
		}
		for i, v := range parts[n] {
			out[i] += v
		}
	}
	if mean {
		for b := 0; b < bags; b++ {
			cnt := offsets[b+1] - offsets[b]
			if cnt == 0 {
				continue
			}
			inv := 1 / float32(cnt)
			row := out[b*c.dim : (b+1)*c.dim]
			for i := range row {
				row[i] *= inv
			}
		}
	}
	if c.reg != nil {
		c.bagNS.Observe(c.reg.Now() - start)
	}
	return res, nil
}

// RefreshStale snapshots the tracked hot keys into the stale tier: every
// tracked key is re-read as a single-key bag (the sum pooling of one key
// IS its row, and MsgPullBag is fence-exempt, so a refresh never perturbs
// the batch protocol) and stored. The tier's staleness doctrine follows:
// a row is as old as the last pass that stored it. A pass whose own reads
// came back stale stores nothing — there is nothing fresher to install.
// Keys are refreshed in ascending order, so a seeded soak's refresh
// traffic replays deterministically.
func (c *Client) RefreshStale() error {
	if c.stale == nil {
		return fmt.Errorf("cluster: no stale tier configured")
	}
	keys := c.stale.TrackedKeys()
	if len(keys) == 0 {
		return nil
	}
	offs := make([]uint32, len(keys)+1)
	for i := range offs {
		offs[i] = uint32(i)
	}
	out := make([]float32, len(keys)*c.dim)
	res, err := c.PullBagsResult(false, offs, keys, out)
	if err != nil {
		return err
	}
	if res.Stale {
		return nil
	}
	for i, k := range keys {
		c.stale.Store(k, out[i*c.dim:(i+1)*c.dim])
	}
	return nil
}

// Push routes gradients to the owning nodes.
func (c *Client) Push(batch int64, keys []uint64, grads []float32) error {
	if err := psengine.CheckBuf(keys, grads, c.dim); err != nil {
		return err
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	sp := c.spans.Start("cluster.push", "cluster", -1, batch)
	p := c.plan(keys)
	err := c.fanOut(batch, p, func(n int, nodeKeys []uint64, pos []int) error {
		nodeGrads := make([]float32, len(nodeKeys)*c.dim)
		for i, orig := range pos {
			copy(nodeGrads[i*c.dim:(i+1)*c.dim], grads[orig*c.dim:(orig+1)*c.dim])
		}
		return c.nodes[n].Push(batch, nodeKeys, nodeGrads)
	})
	sp.EndArg("keys", int64(len(keys)))
	if c.reg != nil && err == nil {
		c.pushNS.Observe(c.reg.Now() - start)
	}
	return err
}

// broadcast runs fn on every node concurrently and returns the first error,
// attributed to its node.
func (c *Client) broadcast(fn func(*rpc.Client) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *rpc.Client) {
			defer wg.Done()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return c.nodeErr(i, err)
		}
	}
	return nil
}

// EndPullPhase signals pull completion on every node.
func (c *Client) EndPullPhase(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.EndPullPhase(batch) })
}

// EndBatch seals batch on every node.
func (c *Client) EndBatch(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.EndBatch(batch) })
}

// RequestCheckpoint asks every node to checkpoint batch.
func (c *Client) RequestCheckpoint(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.RequestCheckpoint(batch) })
}

// CompletedCheckpoint returns the cluster-wide durable checkpoint: the
// minimum over nodes (a checkpoint only counts when every shard has it).
func (c *Client) CompletedCheckpoint() (int64, error) {
	min := int64(1<<62 - 1)
	for i, n := range c.nodes {
		v, err := n.CompletedCheckpoint()
		if err != nil {
			return -1, c.nodeErr(i, err)
		}
		if v < min {
			min = v
		}
	}
	return min, nil
}

// Recover runs the coordinated rollback half of the recovery protocol
// (DESIGN.md §10): every node is rolled back to the cluster-wide committed
// checkpoint — idempotent for a node already there, such as one that just
// crash-recovered — and then every connection re-adopts its node's new
// epoch. Nodes are visited sequentially in index order so a seeded chaos
// run's per-node fault streams replay deterministically. The caller (the
// trainer) rewinds its own dense state and data streams to commit before
// resuming; commit is normally the value CompletedCheckpoint returned
// after the failure.
func (c *Client) Recover(commit int64) error {
	c.replays.Add(1)
	for i, n := range c.nodes {
		if err := n.Rollback(commit); err != nil {
			return c.nodeErr(i, fmt.Errorf("rollback to %d: %w", commit, err))
		}
	}
	for i, n := range c.nodes {
		if _, err := n.AdoptEpoch(); err != nil {
			return c.nodeErr(i, fmt.Errorf("adopt epoch: %w", err))
		}
	}
	return nil
}

// Recoverable reports whether err is worth a rollback + replay — transport
// failures, timeouts and epoch fences — rather than a permanent
// application error. It implements the trainer's Recoverer interface
// together with Recover.
func (c *Client) Recoverable(err error) bool { return rpc.IsRecoverable(err) }

// Scrub runs one full integrity pass on every node and sums the reports.
// Nodes are visited sequentially in index order (deterministic under
// seeded chaos, like Recover). If any node restored or fenced entries its
// epoch is now ahead; the caller must run Recover before resuming the
// batch protocol, exactly as after a crash.
func (c *Client) Scrub() (psengine.ScrubReport, error) {
	var total psengine.ScrubReport
	for i, n := range c.nodes {
		rep, err := n.Scrub()
		if err != nil {
			return total, c.nodeErr(i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// Stats sums the counters across nodes.
func (c *Client) Stats() (psengine.Stats, error) {
	var total psengine.Stats
	for i, n := range c.nodes {
		st, err := n.Stats()
		if err != nil {
			return total, c.nodeErr(i, err)
		}
		total.Entries += st.Entries
		total.CachedEntries += st.CachedEntries
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.PMemReads += st.PMemReads
		total.PMemWrites += st.PMemWrites
		total.Evictions += st.Evictions
		total.CheckpointsDone += st.CheckpointsDone
	}
	return total, nil
}

// Close stops the background prober (if running) and closes every node
// and probe connection.
func (c *Client) Close() error {
	c.healthMu.Lock()
	stop := c.proberStop
	c.proberStop = nil
	probes := c.probes
	c.probes = nil
	c.healthMu.Unlock()
	if stop != nil {
		stop()
	}
	for _, p := range probes {
		if p != nil {
			p.Close()
		}
	}
	var first error
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
