// Package cluster is the worker-side view of a multi-node parameter
// server: embedding entries are partitioned across PS nodes by hashing
// their IDs (Sec. IV), and each pull/push fans out to the owning nodes in
// parallel and reassembles the responses in input order.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
)

// Partition returns the node index owning key among n nodes: the same
// multiplicative hash the engines use for shard selection, reduced modulo
// the node count.
func Partition(key uint64, n int) int {
	return int((key * 0x9e3779b97f4a7c15) >> 32 % uint64(n))
}

// Options configures a cluster Client.
type Options struct {
	// RPC is forwarded to every per-node rpc.DialOpts call (I/O deadlines,
	// retry policy, client-side RPC metrics). Each node's copy gets a
	// deterministic injector label ("node<i>", unless RPC.Label is set) and
	// a per-node retry jitter seed derived from RPC.Retry.Seed and the node
	// index, so a seeded chaos run replays identically.
	RPC rpc.Options
	// Inject, when set, arms the deterministic fault injector on every
	// per-node connection (client-side dial and wire faults). Nil leaves
	// the hot path untouched.
	Inject *faultinject.Injector
	// Obs, when set, receives worker-side fan-out metrics:
	// cluster_fanout_width (nodes contacted per pull/push),
	// cluster_straggler_ns (slowest minus fastest node per fan-out),
	// cluster_pull_ns / cluster_push_ns end-to-end latency.
	Obs *obs.Registry
	// Spans, when set, records per-batch cluster spans: cluster.pull /
	// cluster.push parents with per-node cluster.node children.
	Spans *obs.Tracer
}

// Client is a partitioned parameter-server client.
type Client struct {
	dim   int
	nodes []*rpc.Client
	addrs []string
	spans *obs.Tracer

	// metrics (nil, and free, without Options.Obs)
	fanWidth  *obs.Histogram
	straggler *obs.Histogram
	pullNS    *obs.Histogram
	pushNS    *obs.Histogram
	bagNS     *obs.Histogram
	replays   *obs.Counter
	reg       *obs.Registry
}

// Dial connects to every node address with default options. dim must match
// the server engines.
func Dial(dim int, addrs []string) (*Client, error) {
	return DialOpts(dim, addrs, Options{})
}

// DialOpts connects to every node address with explicit options.
func DialOpts(dim int, addrs []string, opts Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no node addresses")
	}
	c := &Client{dim: dim, addrs: append([]string(nil), addrs...), spans: opts.Spans}
	if reg := opts.Obs; reg != nil {
		c.reg = reg
		c.fanWidth = reg.Histogram("cluster_fanout_width")
		c.straggler = reg.Histogram("cluster_straggler_ns")
		c.pullNS = reg.Histogram("cluster_pull_ns")
		c.pushNS = reg.Histogram("cluster_push_ns")
		c.bagNS = reg.Histogram("cluster_pullbag_ns")
		c.replays = reg.Counter("cluster_replays")
	}
	for n, a := range addrs {
		ro := opts.RPC
		if opts.Inject != nil {
			ro.Inject = opts.Inject
		}
		if ro.Label == "" {
			ro.Label = fmt.Sprintf("node%d", n)
		}
		// Distinct per-node jitter streams from one configured seed.
		ro.Retry.Seed ^= uint64(n) * 0x9e3779b97f4a7c15
		cl, err := rpc.DialOpts(a, ro)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: node %d (%s): %w", n, a, err)
		}
		c.nodes = append(c.nodes, cl)
	}
	return c, nil
}

// Nodes returns the node count.
func (c *Client) Nodes() int { return len(c.nodes) }

// Dim returns the embedding dimension.
func (c *Client) Dim() int { return c.dim }

// nodeErr attributes a per-node failure so a worker log names the failed
// shard server, not just "connection reset".
func (c *Client) nodeErr(n int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("cluster: node %d (%s): %w", n, c.addrs[n], err)
}

// plan groups the caller's keys by owning node, remembering each key's
// original position for reassembly.
type plan struct {
	keys [][]uint64
	pos  [][]int
}

func (c *Client) plan(keys []uint64) plan {
	p := plan{keys: make([][]uint64, len(c.nodes)), pos: make([][]int, len(c.nodes))}
	for i, k := range keys {
		n := Partition(k, len(c.nodes))
		p.keys[n] = append(p.keys[n], k)
		p.pos[n] = append(p.pos[n], i)
	}
	return p
}

// fanOut runs fn for every node with a non-empty key group, concurrently,
// and returns the first error (attributed to its node). When metrics are
// enabled it also records the fan-out width and the straggler gap — the
// spread between the fastest and slowest node of this request, the quantity
// the paper's batched barrier is sensitive to.
func (c *Client) fanOut(batch int64, p plan, fn func(node int, keys []uint64, pos []int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	durs := make([]time.Duration, len(c.nodes))
	width := 0
	for n := range c.nodes {
		if len(p.keys[n]) == 0 {
			continue
		}
		width++
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var start time.Duration
			if c.reg != nil {
				start = c.reg.Now()
			}
			sp := c.spans.Start("cluster.node", "cluster", int64(n), batch)
			errs[n] = fn(n, p.keys[n], p.pos[n])
			sp.EndArg("keys", int64(len(p.keys[n])))
			if c.reg != nil {
				durs[n] = c.reg.Now() - start
			}
		}(n)
	}
	wg.Wait()
	if c.reg != nil && width > 0 {
		c.fanWidth.ObserveValue(int64(width))
		min, max := time.Duration(1<<62), time.Duration(0)
		for n, d := range durs {
			if len(p.keys[n]) == 0 {
				continue
			}
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		c.straggler.Observe(max - min)
	}
	for n, err := range errs {
		if err != nil {
			return c.nodeErr(n, err)
		}
	}
	return nil
}

// Pull fetches weights for keys into dst (len(keys)*dim floats), routing
// each key to its owning node.
func (c *Client) Pull(batch int64, keys []uint64, dst []float32) error {
	if err := psengine.CheckBuf(keys, dst, c.dim); err != nil {
		return err
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	sp := c.spans.Start("cluster.pull", "cluster", -1, batch)
	p := c.plan(keys)
	err := c.fanOut(batch, p, func(n int, nodeKeys []uint64, pos []int) error {
		vals, err := c.nodes[n].Pull(batch, nodeKeys)
		if err != nil {
			return err
		}
		if len(vals) != len(nodeKeys)*c.dim {
			return fmt.Errorf("returned %d floats for %d keys", len(vals), len(nodeKeys))
		}
		for i, orig := range pos {
			copy(dst[orig*c.dim:(orig+1)*c.dim], vals[i*c.dim:(i+1)*c.dim])
		}
		return nil
	})
	sp.EndArg("keys", int64(len(keys)))
	if c.reg != nil && err == nil {
		c.pullNS.Observe(c.reg.Now() - start)
	}
	return err
}

// PullBags gathers pooled embedding bags across the cluster (the serving
// tier's read path): bag b is keys[offsets[b]:offsets[b+1]], pooled into
// out[b*dim:(b+1)*dim] — sum, or mean when mean is set. Each bag's keys
// are partitioned to their owning nodes, every contacted node pools its
// share server-side (always sum mode on the wire), and the partial sums
// are combined here in node-index order — a deterministic float-addition
// order, so repeated gathers of the same state agree bit-for-bit. Mean is
// applied client-side over each bag's full key count.
func (c *Client) PullBags(mean bool, offsets []uint32, keys []uint64, out []float32) error {
	if err := rpc.ValidateBagOffsets(offsets, len(keys)); err != nil {
		return err
	}
	bags := len(offsets) - 1
	if len(out) != bags*c.dim {
		return fmt.Errorf("cluster: out has %d floats, want %d (%d bags x dim %d)",
			len(out), bags*c.dim, bags, c.dim)
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	nn := len(c.nodes)
	nodeKeys := make([][]uint64, nn)
	nodeOffs := make([][]uint32, nn)
	for n := range nodeOffs {
		nodeOffs[n] = make([]uint32, 1, bags+1)
	}
	for b := 0; b < bags; b++ {
		for _, k := range keys[offsets[b]:offsets[b+1]] {
			n := Partition(k, nn)
			nodeKeys[n] = append(nodeKeys[n], k)
		}
		for n := range nodeOffs {
			nodeOffs[n] = append(nodeOffs[n], uint32(len(nodeKeys[n])))
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, nn)
	parts := make([][]float32, nn)
	for n := 0; n < nn; n++ {
		if len(nodeKeys[n]) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			vals, err := c.nodes[n].PullBags(false, nodeOffs[n], nodeKeys[n])
			if err != nil {
				errs[n] = err
				return
			}
			if len(vals) != bags*c.dim {
				errs[n] = fmt.Errorf("returned %d floats for %d bags", len(vals), bags)
				return
			}
			parts[n] = vals
		}(n)
	}
	wg.Wait()
	for n, err := range errs {
		if err != nil {
			return c.nodeErr(n, err)
		}
	}
	clear(out)
	for n := 0; n < nn; n++ {
		if parts[n] == nil {
			continue
		}
		for i, v := range parts[n] {
			out[i] += v
		}
	}
	if mean {
		for b := 0; b < bags; b++ {
			cnt := offsets[b+1] - offsets[b]
			if cnt == 0 {
				continue
			}
			inv := 1 / float32(cnt)
			row := out[b*c.dim : (b+1)*c.dim]
			for i := range row {
				row[i] *= inv
			}
		}
	}
	if c.reg != nil {
		c.bagNS.Observe(c.reg.Now() - start)
	}
	return nil
}

// Push routes gradients to the owning nodes.
func (c *Client) Push(batch int64, keys []uint64, grads []float32) error {
	if err := psengine.CheckBuf(keys, grads, c.dim); err != nil {
		return err
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	sp := c.spans.Start("cluster.push", "cluster", -1, batch)
	p := c.plan(keys)
	err := c.fanOut(batch, p, func(n int, nodeKeys []uint64, pos []int) error {
		nodeGrads := make([]float32, len(nodeKeys)*c.dim)
		for i, orig := range pos {
			copy(nodeGrads[i*c.dim:(i+1)*c.dim], grads[orig*c.dim:(orig+1)*c.dim])
		}
		return c.nodes[n].Push(batch, nodeKeys, nodeGrads)
	})
	sp.EndArg("keys", int64(len(keys)))
	if c.reg != nil && err == nil {
		c.pushNS.Observe(c.reg.Now() - start)
	}
	return err
}

// broadcast runs fn on every node concurrently and returns the first error,
// attributed to its node.
func (c *Client) broadcast(fn func(*rpc.Client) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *rpc.Client) {
			defer wg.Done()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return c.nodeErr(i, err)
		}
	}
	return nil
}

// EndPullPhase signals pull completion on every node.
func (c *Client) EndPullPhase(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.EndPullPhase(batch) })
}

// EndBatch seals batch on every node.
func (c *Client) EndBatch(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.EndBatch(batch) })
}

// RequestCheckpoint asks every node to checkpoint batch.
func (c *Client) RequestCheckpoint(batch int64) error {
	return c.broadcast(func(n *rpc.Client) error { return n.RequestCheckpoint(batch) })
}

// CompletedCheckpoint returns the cluster-wide durable checkpoint: the
// minimum over nodes (a checkpoint only counts when every shard has it).
func (c *Client) CompletedCheckpoint() (int64, error) {
	min := int64(1<<62 - 1)
	for i, n := range c.nodes {
		v, err := n.CompletedCheckpoint()
		if err != nil {
			return -1, c.nodeErr(i, err)
		}
		if v < min {
			min = v
		}
	}
	return min, nil
}

// Recover runs the coordinated rollback half of the recovery protocol
// (DESIGN.md §10): every node is rolled back to the cluster-wide committed
// checkpoint — idempotent for a node already there, such as one that just
// crash-recovered — and then every connection re-adopts its node's new
// epoch. Nodes are visited sequentially in index order so a seeded chaos
// run's per-node fault streams replay deterministically. The caller (the
// trainer) rewinds its own dense state and data streams to commit before
// resuming; commit is normally the value CompletedCheckpoint returned
// after the failure.
func (c *Client) Recover(commit int64) error {
	c.replays.Add(1)
	for i, n := range c.nodes {
		if err := n.Rollback(commit); err != nil {
			return c.nodeErr(i, fmt.Errorf("rollback to %d: %w", commit, err))
		}
	}
	for i, n := range c.nodes {
		if _, err := n.AdoptEpoch(); err != nil {
			return c.nodeErr(i, fmt.Errorf("adopt epoch: %w", err))
		}
	}
	return nil
}

// Recoverable reports whether err is worth a rollback + replay — transport
// failures, timeouts and epoch fences — rather than a permanent
// application error. It implements the trainer's Recoverer interface
// together with Recover.
func (c *Client) Recoverable(err error) bool { return rpc.IsRecoverable(err) }

// Scrub runs one full integrity pass on every node and sums the reports.
// Nodes are visited sequentially in index order (deterministic under
// seeded chaos, like Recover). If any node restored or fenced entries its
// epoch is now ahead; the caller must run Recover before resuming the
// batch protocol, exactly as after a crash.
func (c *Client) Scrub() (psengine.ScrubReport, error) {
	var total psengine.ScrubReport
	for i, n := range c.nodes {
		rep, err := n.Scrub()
		if err != nil {
			return total, c.nodeErr(i, err)
		}
		total.Add(rep)
	}
	return total, nil
}

// Stats sums the counters across nodes.
func (c *Client) Stats() (psengine.Stats, error) {
	var total psengine.Stats
	for i, n := range c.nodes {
		st, err := n.Stats()
		if err != nil {
			return total, c.nodeErr(i, err)
		}
		total.Entries += st.Entries
		total.CachedEntries += st.CachedEntries
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.PMemReads += st.PMemReads
		total.PMemWrites += st.PMemWrites
		total.Evictions += st.Evictions
		total.CheckpointsDone += st.CheckpointsDone
	}
	return total, nil
}

// Close closes every node connection.
func (c *Client) Close() error {
	var first error
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
