package cluster

import (
	"sync"
	"time"

	"openembedding/internal/obs"
)

// Suspicion-based failure detection (gray failures, DESIGN.md §16).
//
// Hard failures — resets, refused dials — announce themselves; the errors
// arrive immediately and PR 9's failover handles them. Gray failures do
// not: a partitioned or persistently slow owner just goes quiet, and a
// caller that waits for the 30s read deadline to find out has already
// blown its serving latency budget. The Detector closes that gap with
// inter-arrival accrual over the MsgPing health probe stream: every
// successful probe of a node records an arrival, the recent inter-arrival
// gaps form a smoothed expectation, and a node whose silence exceeds
// Threshold × that expectation is *suspected*. Suspected owners are routed
// around (failover to replicas, then the stale tier) before any deadline
// expires.
//
// Determinism: the Detector never reads a clock. Every method takes the
// current time as an argument, and the cluster Client feeds it from an
// injectable time source — the virtual clock in soaks, the obs registry's
// monotonic clock in live deployments. Suspicion is therefore a pure
// function of the observation history (arrival times and query times), so
// a seeded chaos run that drives the virtual clock replays its suspicion
// transitions exactly.

// DetectorConfig tunes the suspicion accrual.
type DetectorConfig struct {
	// Interval is the expected gap between successful probes of a healthy
	// node — the prober's cadence. It is the floor of the smoothed
	// expectation (so one burst of fast probes cannot make the detector
	// hair-triggered) and the default ProbeTimeout. Default 100ms.
	Interval time.Duration
	// Threshold is the accrual multiplier: a node is suspected when the
	// time since its last arrival exceeds Threshold × the smoothed gap.
	// Default 3.
	Threshold float64
	// Window is how many recent inter-arrival gaps the smoothed
	// expectation averages over. Default 8.
	Window int
	// ProbeTimeout bounds each health probe RPC (the probe connections'
	// read deadline). Defaults to Interval.
	ProbeTimeout time.Duration
}

func (cfg DetectorConfig) withDefaults() DetectorConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.Interval
	}
	return cfg
}

// detNode is one node's accrual state.
type detNode struct {
	seen      bool
	suspected bool
	last      time.Duration   // arrival time of the last successful probe
	gaps      []time.Duration // ring buffer of recent inter-arrival gaps
	gi        int             // next write position in gaps
	gn        int             // gaps filled (≤ len(gaps))
}

// Detector tracks per-node suspicion. Safe for concurrent use.
type Detector struct {
	mu    sync.Mutex
	cfg   DetectorConfig
	nodes []detNode

	suspicions *obs.Counter // cluster_suspicions: alive→suspected transitions
	suspectedG *obs.Gauge   // cluster_suspected_nodes: currently suspected
}

// NewDetector returns a detector for n nodes. reg may be nil.
func NewDetector(n int, cfg DetectorConfig, reg *obs.Registry) *Detector {
	d := &Detector{cfg: cfg.withDefaults(), nodes: make([]detNode, n)}
	if reg != nil {
		d.suspicions = reg.Counter("cluster_suspicions")
		d.suspectedG = reg.Gauge("cluster_suspected_nodes")
	}
	return d
}

// Resize resets the detector for a new node count (membership changed:
// indexes shifted, so per-index accrual state is meaningless).
func (d *Detector) Resize(n int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	for i := range d.nodes {
		if d.nodes[i].suspected {
			d.suspectedG.Add(-1)
		}
	}
	d.nodes = make([]detNode, n)
	d.mu.Unlock()
}

// Observe records a successful health observation of node n at time now.
// An observation always clears suspicion: the node answered.
func (d *Detector) Observe(n int, now time.Duration) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n >= len(d.nodes) {
		return
	}
	nd := &d.nodes[n]
	if nd.gaps == nil {
		nd.gaps = make([]time.Duration, d.cfg.Window)
	}
	if nd.seen {
		if gap := now - nd.last; gap > 0 {
			nd.gaps[nd.gi] = gap
			nd.gi = (nd.gi + 1) % len(nd.gaps)
			if nd.gn < len(nd.gaps) {
				nd.gn++
			}
		}
	}
	nd.seen = true
	nd.last = now
	if nd.suspected {
		nd.suspected = false
		d.suspectedG.Add(-1)
	}
}

// expectedGap returns node state nd's smoothed inter-arrival expectation:
// the mean of the recorded gap window, floored at cfg.Interval.
func (d *Detector) expectedGap(nd *detNode) time.Duration {
	if nd.gn == 0 {
		return d.cfg.Interval
	}
	var sum time.Duration
	for i := 0; i < nd.gn; i++ {
		sum += nd.gaps[i]
	}
	mean := sum / time.Duration(nd.gn)
	if mean < d.cfg.Interval {
		mean = d.cfg.Interval
	}
	return mean
}

// Suspected reports whether node n is suspected at time now: its silence
// since the last successful probe exceeds Threshold × the smoothed
// inter-arrival gap. A node never successfully observed is not suspected
// (there is no evidence either way — hard errors speak for themselves).
func (d *Detector) Suspected(n int, now time.Duration) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n >= len(d.nodes) {
		return false
	}
	nd := &d.nodes[n]
	if !nd.seen {
		return false
	}
	silent := now - nd.last
	limit := time.Duration(d.cfg.Threshold * float64(d.expectedGap(nd)))
	if silent <= limit {
		return false
	}
	if !nd.suspected {
		nd.suspected = true
		d.suspicions.Add(1)
		d.suspectedG.Add(1)
	}
	return true
}

// SuspectedCount returns how many nodes are currently marked suspected
// (tests and oectl; marking happens on Suspected queries and probe
// rounds, not spontaneously).
func (d *Detector) SuspectedCount() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for i := range d.nodes {
		if d.nodes[i].suspected {
			n++
		}
	}
	return n
}
