package cluster

import (
	"fmt"
	"sort"
)

// This file is the placement half of the elasticity protocol (DESIGN.md
// §15): a consistent-hash ring with virtual nodes. Every node owns
// ringVnodes points on a 64-bit ring; a key lives at mix64(key) and is
// owned by the node of the first point clockwise from it. Adding a node to
// an N-node ring therefore moves only the arcs its new points carve out —
// ~1/(N+1) of the key space — instead of reshuffling nearly everything the
// way modulo placement does.
//
// Positions are deterministic and seed-free: point v of node id sits at
// mix64(mix64(id) ^ v*golden). Two rings built from the same id list are
// identical, on any machine, which is what lets a restarted coordinator
// recompute the exact move plan of an interrupted migration.

// ringVnodes is the number of virtual nodes (ring points) per node. 64
// points keep the per-node load spread within a few percent of fair while
// keeping move plans small (a join touches at most 64 arcs).
const ringVnodes = 64

// mix64 is the splitmix64 finalizer, the same mixer the engines use for
// shard selection and the fault injector uses for schedules.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyHash maps a key to its position on the ring.
func KeyHash(key uint64) uint64 { return mix64(key) }

// vnodePos returns the ring position of virtual node v of the node with
// the given stable id.
func vnodePos(id uint64, v int) uint64 {
	return mix64(mix64(id) ^ uint64(v)*0x9e3779b97f4a7c15)
}

// ringPoint is one virtual node: a position and the index of the owning
// node in the client's node table.
type ringPoint struct {
	pos  uint64
	node int32
}

// Ring is an immutable placement: node ids (index-aligned with the
// client's connection table) and their sorted virtual-node points,
// stamped with an ownership epoch. Membership changes build a new Ring;
// they never mutate one in place.
type Ring struct {
	ids    []uint64
	points []ringPoint
	epoch  int64
}

// NewRing builds the ring for the given stable node ids at ownership
// epoch 0. The id list order defines the node indexing.
func NewRing(ids []uint64) *Ring {
	r := &Ring{ids: append([]uint64(nil), ids...)}
	r.points = make([]ringPoint, 0, len(ids)*ringVnodes)
	for n, id := range ids {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{pos: vnodePos(id, v), node: int32(n)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.node < b.node // deterministic on (astronomically unlikely) ties
	})
	return r
}

// withEpoch returns the same ring stamped with a new ownership epoch.
func (r *Ring) withEpoch(epoch int64) *Ring {
	nr := *r
	nr.epoch = epoch
	return &nr
}

// Epoch returns the ownership epoch this ring was installed at.
func (r *Ring) Epoch() int64 { return r.epoch }

// Nodes returns the node count.
func (r *Ring) Nodes() int { return len(r.ids) }

// IDs returns a copy of the stable node ids, index-aligned with the
// client's node table.
func (r *Ring) IDs() []uint64 { return append([]uint64(nil), r.ids...) }

// succ returns the index into points of the first point at or clockwise
// after position h (wrapping past the top of the ring).
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node index owning key.
func (r *Ring) Owner(key uint64) int {
	return int(r.points[r.succ(KeyHash(key))].node)
}

// Replicas appends up to want distinct node indexes for key — the owner
// first, then the next distinct nodes clockwise — into out and returns it.
// With fewer than want nodes in the ring, all of them are returned.
func (r *Ring) Replicas(key uint64, want int, out []int) []int {
	out = out[:0]
	if want > len(r.ids) {
		want = len(r.ids)
	}
	i := r.succ(KeyHash(key))
	for len(out) < want {
		n := int(r.points[i].node)
		seen := false
		for _, m := range out {
			if m == n {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, n)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// Secondary returns the first distinct node clockwise after key's owner —
// the R=2 read replica — or -1 in a single-node ring.
func (r *Ring) Secondary(key uint64) int {
	var buf [2]int
	reps := r.Replicas(key, 2, buf[:0])
	if len(reps) < 2 {
		return -1
	}
	return reps[1]
}

// Interval is a closed range [Lo, Hi] of ring positions (key hashes, not
// keys). Wrapping arcs are represented as two non-wrapping intervals.
type Interval struct{ Lo, Hi uint64 }

// Contains reports whether ring position h falls inside the interval.
func (iv Interval) Contains(h uint64) bool { return iv.Lo <= h && h <= iv.Hi }

// ContainsKey reports whether the interval covers key's ring position.
func ContainsKey(ivs []Interval, key uint64) bool {
	h := KeyHash(key)
	for _, iv := range ivs {
		if iv.Contains(h) {
			return true
		}
	}
	return false
}

// arcIntervals converts the half-open ring arc (pred, p] into closed,
// non-wrapping intervals. pred == p (a full-circle arc) cannot arise from
// distinct ring points and is rejected by the callers.
func arcIntervals(pred, p uint64) []Interval {
	if pred < p {
		return []Interval{{Lo: pred + 1, Hi: p}}
	}
	// The arc crosses the top of the ring.
	ivs := []Interval{{Lo: 0, Hi: p}}
	if pred < ^uint64(0) {
		ivs = append(ivs, Interval{Lo: pred + 1, Hi: ^uint64(0)})
	}
	return ivs
}

// move is one leg of a migration plan: the hash intervals whose keys move
// from node src to node dst. Indexes refer to the node table in effect
// during the copy — the pre-flip table — except that a join's destination
// is len(oldTable), the joining node the coordinator dials separately.
type move struct {
	src int
	dst int
	ivs []Interval
}

// joinPlan computes the moves for growing ring r by one node with the
// given stable id: for every point the new node adds, the arc between its
// predecessor (in the grown ring) and the point itself moves from the arc's
// old owner to the new node. The new node has index len(r.ids) in the
// returned ring. Moves are merged per source and ordered by source index,
// so a replayed plan issues identical RPCs in identical order.
func (r *Ring) joinPlan(id uint64) (*Ring, []move) {
	for _, old := range r.ids {
		if old == id {
			panic(fmt.Sprintf("cluster: joinPlan: duplicate node id %d", id))
		}
	}
	nr := NewRing(append(r.IDs(), id))
	newNode := len(r.ids)
	bySrc := make(map[int][]Interval)
	for i, pt := range nr.points {
		if int(pt.node) != newNode {
			continue
		}
		prev := i - 1
		if prev < 0 {
			prev = len(nr.points) - 1
		}
		pred := nr.points[prev]
		if pred.pos == pt.pos {
			continue // zero-length arc (tied points); nothing moves
		}
		// The old owner of every position in (pred, pt] is the successor
		// of pt in the old ring: no old point lies strictly inside the arc
		// (it would be the predecessor), so the whole arc has one source —
		// even when pred is another of the new node's points.
		src := int(r.points[r.succ(pt.pos)].node)
		bySrc[src] = append(bySrc[src], arcIntervals(pred.pos, pt.pos)...)
	}
	var moves []move
	for src := 0; src < len(r.ids); src++ {
		if ivs := bySrc[src]; len(ivs) > 0 {
			moves = append(moves, move{src: src, dst: newNode, ivs: ivs})
		}
	}
	return nr, moves
}

// leavePlan computes the moves for shrinking ring r by the node at index
// leaving: every arc the leaving node owned moves to the arc's new owner
// in the shrunk ring. The returned ring keeps the remaining nodes in
// their original relative order; newIndex maps old node indexes to new
// ones (the leaving node maps to -1). Move sources are all the leaving
// node; moves are merged per destination and ordered by the destination's
// OLD index, deterministically.
func (r *Ring) leavePlan(leaving int) (*Ring, []move, []int) {
	if leaving < 0 || leaving >= len(r.ids) {
		panic(fmt.Sprintf("cluster: leavePlan: bad node index %d", leaving))
	}
	rest := make([]uint64, 0, len(r.ids)-1)
	newIndex := make([]int, len(r.ids))
	for n, id := range r.ids {
		if n == leaving {
			newIndex[n] = -1
			continue
		}
		newIndex[n] = len(rest)
		rest = append(rest, id)
	}
	nr := NewRing(rest)
	byDst := make(map[int][]Interval) // keyed by OLD node index of the target
	for i, pt := range r.points {
		if int(pt.node) != leaving {
			continue
		}
		prev := i - 1
		if prev < 0 {
			prev = len(r.points) - 1
		}
		pred := r.points[prev]
		if pred.pos == pt.pos {
			continue
		}
		// New owner: the successor of pt among the remaining nodes' points.
		dstNew := int(nr.points[nr.succ(pt.pos)].node)
		dstOld := -1
		for n, m := range newIndex {
			if m == dstNew {
				dstOld = n
				break
			}
		}
		byDst[dstOld] = append(byDst[dstOld], arcIntervals(pred.pos, pt.pos)...)
	}
	var moves []move
	for dst := 0; dst < len(r.ids); dst++ {
		if ivs := byDst[dst]; len(ivs) > 0 {
			moves = append(moves, move{src: leaving, dst: dst, ivs: ivs})
		}
	}
	return nr, moves, newIndex
}
