package cluster

import (
	"fmt"
	"time"

	"openembedding/internal/rpc"
)

// Replicated bag reads (DESIGN.md §15): under PlacementRing every key has
// a preferred owner and, with two or more nodes, a distinct replica
// (Ring.Secondary) kept warm by SyncReplicas pushes into the replica's
// serve overlay. PullBags prefers the owner; when the owner fails with a
// recoverable error — or stays silent past Options.HedgeDelay — the
// owner's keys are regrouped by their per-key replica and re-read there.
// Training pushes remain single-owner: replicas serve reads only, and a
// replica row is as stale as the last SyncReplicas that refreshed it.

// bagRequest fetches one node's share of a PullBags fan-out: the partial
// sums for all bags over nodeKeys, grouped under nodeOffs. Under
// PlacementModulo (nil ring) it is a plain owner read with legacy error
// semantics. Under PlacementRing it adds failover and optional hedging.
func (c *Client) bagRequest(ring *Ring, n, bags int, offs []uint32, keys []uint64) ([]float32, error) {
	if ring == nil || c.hedgeDelay <= 0 {
		vals, err := c.bagNode(n, bags, offs, keys)
		if err == nil || ring == nil || !rpc.IsRecoverable(err) {
			return vals, err
		}
		c.failovers.Add(1)
		return c.bagViaReplicas(ring, n, bags, offs, keys, err)
	}
	return c.bagHedged(ring, n, bags, offs, keys)
}

// bagNode issues the owner read to node n and validates the result shape.
func (c *Client) bagNode(n, bags int, offs []uint32, keys []uint64) ([]float32, error) {
	vals, err := c.nodes[n].PullBags(false, offs, keys)
	if err != nil {
		return nil, err
	}
	if len(vals) != bags*c.dim {
		return nil, fmt.Errorf("returned %d floats for %d bags", len(vals), bags)
	}
	return vals, nil
}

// bagViaReplicas re-reads node n's share from the keys' replica nodes:
// keys are regrouped per replica (each key's Ring.Secondary), the replica
// requests run sequentially in node-index order, and the partial sums are
// added in that same order — so the substituted partial is bit-identical
// to what a deterministic replica sum would produce, and the caller's
// node-order accumulation stays deterministic. cause is the owner's
// failure, returned when some key has no replica to fail over to.
func (c *Client) bagViaReplicas(ring *Ring, n, bags int, offs []uint32, keys []uint64, cause error) ([]float32, error) {
	nn := len(c.nodes)
	repKeys := make([][]uint64, nn)
	repOffs := make([][]uint32, nn)
	for r := range repOffs {
		repOffs[r] = make([]uint32, 1, bags+1)
	}
	for b := 0; b < bags; b++ {
		for _, k := range keys[offs[b]:offs[b+1]] {
			r := ring.Secondary(k)
			if r < 0 || r == n || r >= nn {
				return nil, fmt.Errorf("no replica for key %d: %w", k, cause)
			}
			repKeys[r] = append(repKeys[r], k)
		}
		for r := range repOffs {
			repOffs[r] = append(repOffs[r], uint32(len(repKeys[r])))
		}
	}
	acc := make([]float32, bags*c.dim)
	for r := 0; r < nn; r++ {
		if len(repKeys[r]) == 0 {
			continue
		}
		vals, err := c.bagNode(r, bags, repOffs[r], repKeys[r])
		if err != nil {
			return nil, fmt.Errorf("replica node %d (%s): %w", r, c.addrs[r], err)
		}
		for i, v := range vals {
			acc[i] += v
		}
	}
	return acc, nil
}

// bagHedged races the owner read against one hedged replica read launched
// after the hedge deadline. The first success wins; if both fail the
// owner's error is returned. The owner finishing first (the steady state)
// never pays for a replica round-trip.
func (c *Client) bagHedged(ring *Ring, n, bags int, offs []uint32, keys []uint64) ([]float32, error) {
	type res struct {
		vals []float32
		err  error
	}
	ch := make(chan res, 2)
	go func() {
		vals, err := c.bagNode(n, bags, offs, keys)
		ch <- res{vals, err}
	}()
	timer := time.NewTimer(c.hedgeDelay)
	defer timer.Stop()
	outstanding := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				return r.vals, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedged {
				// Owner failed before the hedge deadline: hard failover.
				if !rpc.IsRecoverable(r.err) {
					return nil, r.err
				}
				c.failovers.Add(1)
				return c.bagViaReplicas(ring, n, bags, offs, keys, r.err)
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			outstanding++
			c.hedged.Add(1)
			go func() {
				vals, err := c.bagViaReplicas(ring, n, bags, offs, keys, fmt.Errorf("hedged past %v", c.hedgeDelay))
				ch <- res{vals, err}
			}()
		}
	}
}
