package cluster

import (
	"errors"
	"fmt"
	"time"

	"openembedding/internal/rpc"
)

// Replicated bag reads (DESIGN.md §15) with gray-failure degradation
// (§16): under PlacementRing every key has a preferred owner and, with
// two or more nodes, a distinct replica (Ring.Secondary) kept warm by
// SyncReplicas pushes into the replica's serve overlay. PullBags prefers
// the owner; the owner is routed around when it is *degraded* — a
// transport failure or timeout, a shed (busy) response, an open circuit
// breaker, or mere suspicion by the failure detector — and the keys are
// regrouped by their per-key replica and re-read there. When the replicas
// cannot answer either, the stale fallback tier (serve.StaleTier) is the
// last line: the read succeeds, flagged stale, instead of erroring.
// Training pushes remain single-owner: replicas serve reads only, and a
// replica row is as stale as the last SyncReplicas that refreshed it.

// errSuspectedOwner is the failover cause recorded when the detector
// preempts an owner read.
var errSuspectedOwner = errors.New("cluster: owner suspected by failure detector")

// failoverCause attributes a failover for the split counters.
type failoverCause int

const (
	causeHard    failoverCause = iota // the owner answered with a degraded error
	causeSuspect                      // the detector preempted the owner read
	causeHedge                        // a hedged replica read won the race
)

// countFailover tallies one failover in the aggregate counter and its
// cause-split counter (cluster_failovers_{hard,suspect,hedge}).
func (c *Client) countFailover(cause failoverCause) {
	c.failovers.Add(1)
	switch cause {
	case causeHard:
		c.foHard.Add(1)
	case causeSuspect:
		c.foSuspect.Add(1)
	case causeHedge:
		c.foHedge.Add(1)
	}
}

// bagRequest fetches one node's share of a PullBags fan-out: the partial
// sums for all bags over nodeKeys, grouped under nodeOffs. Under
// PlacementModulo (nil ring) it is a plain owner read with legacy error
// semantics. Under PlacementRing it adds suspicion preemption, failover,
// optional hedging, and the stale fallback tier.
func (c *Client) bagRequest(ring *Ring, n, bags int, offs []uint32, keys []uint64) (vals []float32, stale bool, err error) {
	// Suspicion preempts the owner read entirely: a gray-failed owner
	// would burn the full read deadline before surfacing an error, which
	// is exactly the latency the detector exists to save.
	if ring != nil && c.suspectedNow(n) {
		if vals, rerr := c.bagViaReplicas(ring, n, bags, offs, keys, errSuspectedOwner); rerr == nil {
			c.countFailover(causeSuspect)
			return vals, false, nil
		}
		// Replicas cannot cover the share either; serve stale rather than
		// wait out a suspected owner's deadline.
		if vals, ok := c.bagStale(bags, offs, keys); ok {
			return vals, true, nil
		}
		// No stale tier configured: the suspected owner is still the best
		// remaining option — fall through and ask it after all.
	}
	if ring == nil || c.hedgeDelay <= 0 {
		vals, err := c.bagNode(n, bags, offs, keys)
		if err == nil || ring == nil || !rpc.IsDegraded(err) {
			return vals, false, err
		}
		c.countFailover(causeHard)
		vals, rerr := c.bagViaReplicas(ring, n, bags, offs, keys, err)
		if rerr == nil {
			return vals, false, nil
		}
		if vals, ok := c.bagStale(bags, offs, keys); ok {
			return vals, true, nil
		}
		return nil, false, rerr
	}
	return c.bagHedged(ring, n, bags, offs, keys)
}

// bagNode issues the owner read to node n and validates the result shape.
func (c *Client) bagNode(n, bags int, offs []uint32, keys []uint64) ([]float32, error) {
	vals, err := c.nodes[n].PullBags(false, offs, keys)
	if err != nil {
		return nil, err
	}
	if len(vals) != bags*c.dim {
		return nil, fmt.Errorf("returned %d floats for %d bags", len(vals), bags)
	}
	return vals, nil
}

// bagViaReplicas re-reads node n's share from the keys' replica nodes:
// keys are regrouped per replica (each key's Ring.Secondary), the replica
// requests run sequentially in node-index order, and the partial sums are
// added in that same order — so the substituted partial is bit-identical
// to what a deterministic replica sum would produce, and the caller's
// node-order accumulation stays deterministic. cause is the owner's
// failure, returned when some key has no replica to fail over to.
func (c *Client) bagViaReplicas(ring *Ring, n, bags int, offs []uint32, keys []uint64, cause error) ([]float32, error) {
	nn := len(c.nodes)
	repKeys := make([][]uint64, nn)
	repOffs := make([][]uint32, nn)
	for r := range repOffs {
		repOffs[r] = make([]uint32, 1, bags+1)
	}
	for b := 0; b < bags; b++ {
		for _, k := range keys[offs[b]:offs[b+1]] {
			r := ring.Secondary(k)
			if r < 0 || r == n || r >= nn {
				return nil, fmt.Errorf("no replica for key %d: %w", k, cause)
			}
			repKeys[r] = append(repKeys[r], k)
		}
		for r := range repOffs {
			repOffs[r] = append(repOffs[r], uint32(len(repKeys[r])))
		}
	}
	acc := make([]float32, bags*c.dim)
	for r := 0; r < nn; r++ {
		if len(repKeys[r]) == 0 {
			continue
		}
		vals, err := c.bagNode(r, bags, repOffs[r], repKeys[r])
		if err != nil {
			return nil, fmt.Errorf("replica node %d (%s): %w", r, c.addrs[r], err)
		}
		for i, v := range vals {
			acc[i] += v
		}
	}
	return acc, nil
}

// bagStale answers one node's share from the stale fallback tier: each
// key contributes its last refreshed row (keys never refreshed contribute
// the zero vector — the documented staleness doctrine), summed per bag.
// Reports false without a configured tier.
func (c *Client) bagStale(bags int, offs []uint32, keys []uint64) ([]float32, bool) {
	if c.stale == nil {
		return nil, false
	}
	acc := make([]float32, bags*c.dim)
	for b := 0; b < bags; b++ {
		dst := acc[b*c.dim : (b+1)*c.dim]
		for _, k := range keys[offs[b]:offs[b+1]] {
			row := c.stale.Lookup(k)
			if len(row) != c.dim {
				continue
			}
			for i, v := range row {
				dst[i] += v
			}
		}
	}
	c.stale.Fallback()
	return acc, true
}

// bagHedged races the owner read against one hedged replica read launched
// after the hedge deadline. The first success wins (a hedge win counts as
// a hedge-cause failover); if both fail the share falls back to the stale
// tier, and only then to the first error. The owner finishing first (the
// steady state) never pays for a replica round-trip.
func (c *Client) bagHedged(ring *Ring, n, bags int, offs []uint32, keys []uint64) ([]float32, bool, error) {
	type res struct {
		vals  []float32
		err   error
		hedge bool // produced by the hedged replica read, not the owner
	}
	ch := make(chan res, 2)
	go func() {
		vals, err := c.bagNode(n, bags, offs, keys)
		ch <- res{vals, err, false}
	}()
	timer := time.NewTimer(c.hedgeDelay)
	defer timer.Stop()
	outstanding := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					c.countFailover(causeHedge)
				}
				return r.vals, false, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !r.hedge && !hedged {
				// Owner failed before the hedge deadline: hard failover.
				if !rpc.IsDegraded(r.err) {
					return nil, false, r.err
				}
				c.countFailover(causeHard)
				vals, rerr := c.bagViaReplicas(ring, n, bags, offs, keys, r.err)
				if rerr == nil {
					return vals, false, nil
				}
				if vals, ok := c.bagStale(bags, offs, keys); ok {
					return vals, true, nil
				}
				return nil, false, rerr
			}
			if outstanding == 0 {
				if vals, ok := c.bagStale(bags, offs, keys); ok {
					return vals, true, nil
				}
				return nil, false, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			outstanding++
			c.hedged.Add(1)
			go func() {
				vals, err := c.bagViaReplicas(ring, n, bags, offs, keys, fmt.Errorf("hedged past %v", c.hedgeDelay))
				ch <- res{vals, err, true}
			}()
		}
	}
}
