package cluster

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/ps"
	"openembedding/internal/rpc"
)

// startElasticNode starts one serving PMem-OE node for the elasticity
// tests.
func startElasticNode(t *testing.T) *ps.Node {
	t.Helper()
	store := storeConfig()
	store.RetainCheckpoints = 2
	n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
		Engine:        "pmem-oe",
		Serve:         true,
		Store:         store,
		CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// startElasticCluster starts a serving PMem-OE cluster with metrics and
// the default ring placement.
func startElasticCluster(t *testing.T, nodes int) (*Client, []*ps.Node, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	var addrs []string
	var ns []*ps.Node
	for i := 0; i < nodes; i++ {
		n := startElasticNode(t)
		addrs = append(addrs, n.Addr())
		ns = append(ns, n)
	}
	c, err := DialOpts(4, addrs, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, ns, reg
}

// trainStep runs one full batch: pull (materializing keys), end pull
// phase, push grads of g, seal.
func trainStep(t *testing.T, c *Client, b int64, keys []uint64, g float32) []float32 {
	t.Helper()
	dst := make([]float32, len(keys)*c.dim)
	if err := c.Pull(b, keys, dst); err != nil {
		t.Fatalf("pull %d: %v", b, err)
	}
	if err := c.EndPullPhase(b); err != nil {
		t.Fatal(err)
	}
	grads := make([]float32, len(keys)*c.dim)
	for i := range grads {
		grads[i] = g
	}
	if err := c.Push(b, keys, grads); err != nil {
		t.Fatalf("push %d: %v", b, err)
	}
	if err := c.EndBatch(b); err != nil {
		t.Fatal(err)
	}
	return dst
}

// pullExact pulls keys at batch b and requires bit-exact equality to want.
func pullExact(t *testing.T, label string, c *Client, b int64, keys []uint64, want []float32) {
	t.Helper()
	got := make([]float32, len(keys)*c.dim)
	if err := c.Pull(b, keys, got); err != nil {
		t.Fatalf("%s: pull: %v", label, err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v (bit-exact)", label, i, got[i], want[i])
		}
	}
}

func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i*3 + 1)
	}
	return keys
}

// TestClusterJoinMigratesAndServes grows a live 3-node cluster to 4: the
// join migrates the new node's arcs, flips the ownership epoch, and every
// trained value reads back bit-exactly through the new topology — then
// training continues across all 4 nodes.
func TestClusterJoinMigratesAndServes(t *testing.T) {
	c, _, reg := startElasticCluster(t, 3)
	keys := testKeys(48)
	w := trainStep(t, c, 0, keys, 1) // post-push rows: w - 0.1
	for i := range w {
		w[i] -= 0.1
	}

	joiner := startElasticNode(t)
	if err := c.Join(0, joiner.Addr()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := c.Nodes(); got != 4 {
		t.Fatalf("nodes = %d, want 4", got)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("ownership epoch = %d, want 1", got)
	}
	newOwned := 0
	for _, k := range keys {
		if c.ownerOf(k) == 3 {
			newOwned++
		}
	}
	if newOwned == 0 {
		t.Fatal("new node owns none of the trained keys; enlarge the key set")
	}
	s := reg.Snapshot()
	if got := s.Counters["cluster_migrations"]; got != 1 {
		t.Fatalf("cluster_migrations = %d, want 1", got)
	}
	if got := s.Counters["cluster_migrated_keys"]; got < int64(newOwned) {
		t.Fatalf("cluster_migrated_keys = %d, want >= %d", got, newOwned)
	}
	if got := s.Histograms["cluster_migration_ns"].Count; got != 1 {
		t.Fatalf("cluster_migration_ns count = %d, want 1", got)
	}

	// Every key reads back its trained value through the new owners.
	pullExact(t, "post-join", c, 1, keys, w)

	// The moved range really left its sources: the cluster-wide entry
	// count is unchanged (adopted on the joiner, dropped at the sources).
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != int64(len(keys)) {
		t.Fatalf("cluster entries = %d, want %d (moved keys must leave their source)", st.Entries, len(keys))
	}

	// Training continues through the grown cluster.
	trainStep(t, c, 1, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}
	pullExact(t, "post-join train", c, 2, keys, w)
}

// TestClusterLeaveMigratesAndServes shrinks 3 nodes to 2: the leaver's
// arcs migrate out, the epoch flips, values survive bit-exactly, and
// training continues.
func TestClusterLeaveMigratesAndServes(t *testing.T) {
	c, _, reg := startElasticCluster(t, 3)
	keys := testKeys(48)
	w := trainStep(t, c, 0, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}

	if err := c.Leave(0, 1); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := c.Nodes(); got != 2 {
		t.Fatalf("nodes = %d, want 2", got)
	}
	if got := c.Epoch(); got != 1 {
		t.Fatalf("ownership epoch = %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["cluster_migrations"]; got != 1 {
		t.Fatalf("cluster_migrations = %d, want 1", got)
	}

	pullExact(t, "post-leave", c, 1, keys, w)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != int64(len(keys)) {
		t.Fatalf("cluster entries = %d, want %d", st.Entries, len(keys))
	}

	trainStep(t, c, 1, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}
	pullExact(t, "post-leave train", c, 2, keys, w)
}

// TestClusterJoinDeltaReplay trains BETWEEN migration copy rounds (via the
// test hook): the delta round must pick up rows pushed after the full
// copy, so the post-join state reflects every batch.
func TestClusterJoinDeltaReplay(t *testing.T) {
	c, _, _ := startElasticCluster(t, 2)
	keys := testKeys(32)
	trainStep(t, c, 0, keys, 1)

	rounds := 0
	c.migrateHook = func(round int, cur int64) int64 {
		rounds++
		if round == 0 {
			// Push a batch mid-migration: the copied rows are now stale.
			trainStep(t, c, cur+1, keys, 1)
			return cur + 1
		}
		return cur
	}
	joiner := startElasticNode(t)
	if err := c.Join(0, joiner.Addr()); err != nil {
		t.Fatalf("join: %v", err)
	}
	c.migrateHook = nil
	if rounds < 2 {
		t.Fatalf("copy rounds = %d, want >= 2 (full copy + delta)", rounds)
	}

	// Both batches' updates must be visible through the new owners.
	want := make([]float32, len(keys)*c.dim)
	init := make([]float32, len(keys)*c.dim)
	single, _, _ := startElasticCluster(t, 1)
	if err := single.Pull(0, keys, init); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		// Two sequential SGD steps (lr=0.1, g=1), in float32 like the engine.
		want[i] = init[i] - 0.1
		want[i] -= 0.1
	}
	pullExact(t, "post-delta-join", c, 2, keys, want)
}

// TestPullBagsFailoverOnDeadNode is the replicated-serving acceptance
// test: after a replica sync, killing one node surfaces ZERO errors to
// PullBags callers — the dead node's keys are re-read from their
// replicas — and the failover counter accounts for it.
func TestPullBagsFailoverOnDeadNode(t *testing.T) {
	c, ns, reg := startElasticCluster(t, 3)
	keys := testKeys(36)
	w := trainStep(t, c, 0, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}

	pushed, err := c.SyncReplicas(keys)
	if err != nil {
		t.Fatalf("sync replicas: %v", err)
	}
	if pushed != len(keys) {
		t.Fatalf("replicas pushed = %d, want %d", pushed, len(keys))
	}

	dead := 1
	if err := ns[dead].Close(); err != nil {
		t.Fatal(err)
	}

	// Single-key bags: every key must come back bit-exact, dead owner or
	// not, with no error surfaced.
	offs := make([]uint32, len(keys)+1)
	for i := range keys {
		offs[i+1] = uint32(i + 1)
	}
	out := make([]float32, len(keys)*c.dim)
	if err := c.PullBags(false, offs, keys, out); err != nil {
		t.Fatalf("pull-bags with dead node: %v", err)
	}
	for i := range out {
		if out[i] != w[i] {
			t.Fatalf("failover row [%d] = %v, want %v (bit-exact replica)", i, out[i], w[i])
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["cluster_failovers"]; got < 1 {
		t.Fatalf("cluster_failovers = %d, want >= 1", got)
	}
	// Cause attribution: a dead owner is a hard failover — no detector is
	// armed (no suspicion) and no hedging is configured.
	if hard := s.Counters["cluster_failovers_hard"]; hard != s.Counters["cluster_failovers"] {
		t.Fatalf("cluster_failovers_hard = %d, want %d (all failovers hard-caused)",
			hard, s.Counters["cluster_failovers"])
	}
	if got := s.Counters["cluster_failovers_suspect"]; got != 0 {
		t.Fatalf("cluster_failovers_suspect = %d, want 0 (no detector armed)", got)
	}
	if got := s.Counters["cluster_failovers_hedge"]; got != 0 {
		t.Fatalf("cluster_failovers_hedge = %d, want 0 (no hedging configured)", got)
	}
	if got := s.Counters["cluster_hedged_reads"]; got != 0 {
		t.Fatalf("cluster_hedged_reads = %d, want 0 (no hedging configured)", got)
	}

	// A pooled bag over all keys still agrees with the reference sum
	// (within float tolerance: replica partials sum in a different order).
	sumOut := make([]float32, c.dim)
	if err := c.PullBags(false, []uint32{0, uint32(len(keys))}, keys, sumOut); err != nil {
		t.Fatalf("pooled bag with dead node: %v", err)
	}
	for d := 0; d < c.dim; d++ {
		var want float32
		for i := range keys {
			want += w[i*c.dim+d]
		}
		diff := sumOut[d] - want
		if diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("pooled[%d] = %v, want %v", d, sumOut[d], want)
		}
	}
}

// TestPullBagsHedgedRead arms HedgeDelay against a node that accepts and
// never answers: the hedged replica read must answer the request long
// before the read deadline, and the hedge counter must tick.
func TestPullBagsHedgedRead(t *testing.T) {
	real := startElasticNode(t)
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := hung.Accept()
			if err != nil {
				return
			}
			go func() { <-done; conn.Close() }()
		}
	}()

	reg := obs.NewRegistry()
	c, err := DialOpts(4, []string{real.Addr(), hung.Addr().String()}, Options{
		RPC:        rpc.Options{ReadTimeout: 5 * time.Second},
		HedgeDelay: 20 * time.Millisecond,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Keys owned by the hung node; their replica is the live one.
	var keys []uint64
	for k := uint64(0); len(keys) < 4; k++ {
		if c.ownerOf(k) == 1 {
			keys = append(keys, k)
		}
	}
	offs := make([]uint32, len(keys)+1)
	for i := range keys {
		offs[i+1] = uint32(i + 1)
	}
	out := make([]float32, len(keys)*c.dim)
	start := time.Now()
	if err := c.PullBags(false, offs, keys, out); err != nil {
		t.Fatalf("hedged pull-bags: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged read took %v; the hedge should answer in ~HedgeDelay", elapsed)
	}
	s := reg.Snapshot()
	if got := s.Counters["cluster_hedged_reads"]; got < 1 {
		t.Fatalf("cluster_hedged_reads = %d, want >= 1", got)
	}
	// Cause attribution: the hedged replica result won the race against a
	// node that never answers, so the failover is hedge-caused — not hard
	// (the owner surfaced no error before the hedge won) and not suspicion
	// (no detector armed).
	if got := s.Counters["cluster_failovers_hedge"]; got < 1 {
		t.Fatalf("cluster_failovers_hedge = %d, want >= 1", got)
	}
	if got := s.Counters["cluster_failovers_suspect"]; got != 0 {
		t.Fatalf("cluster_failovers_suspect = %d, want 0 (no detector armed)", got)
	}
	if got := s.Counters["cluster_failovers"]; got < s.Counters["cluster_failovers_hedge"] {
		t.Fatalf("cluster_failovers = %d < hedge-caused %d; aggregate must cover the split",
			got, s.Counters["cluster_failovers_hedge"])
	}
}

// TestBroadcastPartialFailure: a broadcast against a cluster with one dead
// node fails with an error naming that node, and the remaining
// connections stay usable for work routed to live nodes.
func TestBroadcastPartialFailure(t *testing.T) {
	c, ns, _ := startElasticCluster(t, 3)
	keys := keysForAllNodes(t, 3, 9)
	dst := make([]float32, len(keys)*c.dim)
	if err := c.Pull(0, keys, dst); err != nil {
		t.Fatal(err)
	}

	dead := 2
	deadAddr := ns[dead].Addr()
	if err := ns[dead].Close(); err != nil {
		t.Fatal(err)
	}

	err := c.EndPullPhase(0)
	if err == nil {
		t.Fatal("broadcast succeeded with a dead node")
	}
	if want := fmt.Sprintf("node %d (%s)", dead, deadAddr); !strings.Contains(err.Error(), want) {
		t.Fatalf("broadcast error %q does not name %q", err, want)
	}

	// Live nodes processed their half of the broadcast and still serve:
	// re-pull only the keys the live nodes own.
	var live []uint64
	for _, k := range keys {
		if c.ownerOf(k) != dead {
			live = append(live, k)
		}
	}
	if len(live) == 0 {
		t.Fatal("no keys on live nodes")
	}
	if err := c.Pull(0, live, make([]float32, len(live)*c.dim)); err != nil {
		t.Fatalf("live nodes unusable after partial broadcast failure: %v", err)
	}
}

// TestPingInfo: the health RPC reports the node's epoch, a positive RTT,
// and whether the serving tier is mounted.
func TestPingInfo(t *testing.T) {
	serving := startElasticNode(t)
	cl, err := rpc.Dial(serving.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.PingInfo()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Serving {
		t.Error("serving node reports Serving=false")
	}
	if h.Epoch != serving.Epoch() {
		t.Errorf("ping epoch = %d, node epoch = %d", h.Epoch, serving.Epoch())
	}
	if h.RTT <= 0 {
		t.Errorf("ping RTT = %v, want > 0", h.RTT)
	}

	plain, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
		Engine: "dram-ps", Store: storeConfig(),
		CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })
	cl2, err := rpc.Dial(plain.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	h2, err := cl2.PingInfo()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Serving {
		t.Error("non-serving node reports Serving=true")
	}
}
