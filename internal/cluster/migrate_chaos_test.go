package cluster

import (
	"errors"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
)

// The migration chaos soak (DESIGN.md §15 crash matrix): a live 3-node
// cluster trains, checkpoints, and then grows to 4 nodes while a scripted
// crash kills one migration role mid-copy — the source node, the target
// (joining) node, or the coordinator itself. Whatever happens, the
// standard recovery sequence (Recover to the cluster commit, re-run the
// join from scratch) must converge to a final state bit-identical to the
// fault-free migration from the same seed. The pre-seal verification pass
// is what makes the target-crash case safe: a restarted fresh node sheds
// its un-checkpointed adopted entries, and the coordinator must notice
// instead of flipping ownership over a hole.

// migChaosSeed mirrors the train chaos soak: fixed default, OE_CHAOS_SEED
// sweeps it in CI.
func migChaosSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("OE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("OE_CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

const (
	migChaosNodes = 3
	migChaosKeys  = 48
	migChaosDim   = 4
)

// migChaosGrad derives a deterministic per-(batch, slot) gradient from the
// seed: the same seed trains the same floats in every scenario.
func migChaosGrad(seed uint64, batch int64, i int) float32 {
	h := mix64(seed ^ uint64(batch)*0x9e3779b97f4a7c15 ^ uint64(i))
	return float32(h%1000)/1000 - 0.5
}

type migChaosHarness struct {
	t      *testing.T
	seed   uint64
	reg    *obs.Registry
	nodes  []*ps.Node
	addrs  []string
	joiner *ps.Node
	cl     *Client
	keys   []uint64
}

func (h *migChaosHarness) dial() *Client {
	h.t.Helper()
	cl, err := DialOpts(migChaosDim, h.addrs, Options{
		RPC: rpc.Options{
			Retry: rpc.RetryPolicy{
				MaxAttempts: 6,
				Backoff:     time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        h.seed,
			},
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
		Obs: h.reg,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { cl.Close() })
	return cl
}

func (h *migChaosHarness) train(b int64) {
	h.t.Helper()
	dst := make([]float32, len(h.keys)*migChaosDim)
	if err := h.cl.Pull(b, h.keys, dst); err != nil {
		h.t.Fatalf("pull %d: %v", b, err)
	}
	if err := h.cl.EndPullPhase(b); err != nil {
		h.t.Fatal(err)
	}
	grads := make([]float32, len(h.keys)*migChaosDim)
	for i := range grads {
		grads[i] = migChaosGrad(h.seed, b, i)
	}
	if err := h.cl.Push(b, h.keys, grads); err != nil {
		h.t.Fatalf("push %d: %v", b, err)
	}
	if err := h.cl.EndBatch(b); err != nil {
		h.t.Fatal(err)
	}
}

func (h *migChaosHarness) checkpoint(b int64) {
	h.t.Helper()
	if err := h.cl.RequestCheckpoint(b); err != nil {
		h.t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := h.cl.CompletedCheckpoint()
		if err != nil {
			h.t.Fatal(err)
		}
		if v >= b {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("checkpoint %d never committed", b)
		}
		time.Sleep(time.Millisecond)
	}
}

// recoverAndRejoin is the operator playbook after a failed migration:
// Recover the old membership to its commit, then re-run the join from
// scratch (idempotent: hygiene drop, full copy, verify, seal, flip).
func (h *migChaosHarness) recoverAndRejoin(commitBatch int64) {
	h.t.Helper()
	if err := h.cl.Recover(commitBatch); err != nil {
		h.t.Fatalf("recover: %v", err)
	}
	if err := h.cl.Join(commitBatch, h.joiner.Addr()); err != nil {
		h.t.Fatalf("re-join after recovery: %v", err)
	}
}

// runMigrationScenario trains 3 batches, checkpoints, then joins a 4th
// node with the named role killed mid-copy ("" = fault-free), recovers as
// needed, trains one more batch through the grown cluster, and reads out
// the full embedding state deterministically.
func runMigrationScenario(t *testing.T, seed uint64, role string) []float32 {
	t.Helper()
	h := &migChaosHarness{t: t, seed: seed, reg: obs.NewRegistry()}
	store := func() psengine.Config {
		s := storeConfig()
		s.RetainCheckpoints = 2
		return s
	}
	for i := 0; i < migChaosNodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine: "pmem-oe", Serve: true, Store: store(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		h.nodes = append(h.nodes, n)
		h.addrs = append(h.addrs, n.Addr())
	}
	h.keys = testKeys(migChaosKeys)
	h.cl = h.dial()

	for b := int64(0); b < 3; b++ {
		h.train(b)
	}
	h.checkpoint(2)

	joiner, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
		Engine: "pmem-oe", Serve: true, Store: store(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	h.joiner = joiner

	const sentinel = "migration-coordinator-crash"
	crash := func(n *ps.Node) {
		t.Helper()
		if err := n.Crash(); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Restart(); err != nil {
			t.Fatal(err)
		}
	}
	switch role {
	case "target":
		h.cl.migrateHook = func(round int, cur int64) int64 {
			if round == 0 {
				crash(h.joiner)
			}
			return cur
		}
	case "source":
		// Node index derived from the seed: every seed kills a
		// (deterministically chosen) old node mid-copy; with 64 vnodes
		// each, every old node sources some arc of the join.
		victim := int(mix64(seed) % migChaosNodes)
		h.cl.migrateHook = func(round int, cur int64) int64 {
			if round == 0 {
				crash(h.nodes[victim])
			}
			return cur
		}
	case "coordinator":
		h.cl.migrateHook = func(round int, cur int64) int64 {
			if round == 0 {
				panic(sentinel)
			}
			return cur
		}
	case "":
	default:
		t.Fatalf("unknown role %q", role)
	}

	joinErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if r != sentinel {
					panic(r)
				}
				// The coordinator "died": a fresh one re-derives the plan
				// from the original membership and takes over.
				h.cl.migrateHook = nil
				h.cl = h.dial()
				err = errors.New("coordinator crashed mid-migration")
			}
		}()
		return h.cl.Join(2, h.joiner.Addr())
	}()
	h.cl.migrateHook = nil
	if joinErr != nil {
		if role == "" {
			t.Fatalf("fault-free join failed: %v", joinErr)
		}
		t.Logf("role=%s: join failed as injected (%v); recovering", role, joinErr)
		h.recoverAndRejoin(2)
	} else if role != "" {
		// Transparent RPC retries (plus the durable, idempotent adopt
		// path) healed the crash inside one join attempt — also a pass.
		t.Logf("role=%s: join self-healed through retries", role)
	}
	if got := h.cl.Nodes(); got != migChaosNodes+1 {
		t.Fatalf("role=%s: nodes = %d, want %d", role, got, migChaosNodes+1)
	}

	h.train(3)

	keys := append([]uint64(nil), h.keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]float32, len(keys)*migChaosDim)
	if err := h.cl.Pull(4, keys, out); err != nil {
		t.Fatalf("role=%s: final readout: %v", role, err)
	}
	return out
}

// TestMigrationChaosRoleKills is the migration crash-matrix soak: for the
// printed seed, killing the source, the target, or the coordinator
// mid-migration must all converge — after standard recovery — to exactly
// the fault-free migration's final embedding state, bit for bit.
func TestMigrationChaosRoleKills(t *testing.T) {
	seed := migChaosSeed(t)
	t.Logf("migration chaos seed = %d (set OE_CHAOS_SEED to override)", seed)

	ref := runMigrationScenario(t, seed, "")
	for _, role := range []string{"target", "source", "coordinator"} {
		got := runMigrationScenario(t, seed, role)
		if len(got) != len(ref) {
			t.Fatalf("role=%s: readout length %d vs %d", role, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("role=%s: state[%d] = %v, want %v (bit-identical to fault-free migration)",
					role, i, got[i], ref[i])
			}
		}
		t.Logf("role=%s: converged bit-identical to fault-free migration", role)
	}
}
