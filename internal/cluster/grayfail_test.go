package cluster

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/ps"
	"openembedding/internal/rpc"
	"openembedding/internal/serve"
)

// Gray-failure tolerance tests (DESIGN.md §16): the suspicion-based
// failure detector, preemptive failover of suspected owners, and the
// stale fallback tier that keeps serving answering when owners AND
// replicas are degraded.

func TestDetectorAccrual(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDetector(2, DetectorConfig{Interval: 100 * time.Millisecond, Threshold: 3, Window: 4}, reg)

	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for i := 0; i <= 3; i++ {
		d.Observe(0, ms(i*100))
	}
	// Silence of 100ms against a 100ms expected gap: healthy.
	if d.Suspected(0, ms(400)) {
		t.Fatal("suspected after one missed beat (threshold is 3)")
	}
	// Silence of 301ms > 3 × 100ms: suspected, counter ticks once.
	if !d.Suspected(0, ms(601)) {
		t.Fatal("not suspected after 3× the expected gap")
	}
	if !d.Suspected(0, ms(700)) {
		t.Fatal("suspicion did not persist")
	}
	s := reg.Snapshot()
	if got := s.Counters["cluster_suspicions"]; got != 1 {
		t.Fatalf("cluster_suspicions = %d, want 1 (one alive→suspected transition)", got)
	}
	if got := s.Gauges["cluster_suspected_nodes"]; got != 1 {
		t.Fatalf("cluster_suspected_nodes = %d, want 1", got)
	}

	// An observation always clears suspicion: the node answered.
	d.Observe(0, ms(700))
	if d.Suspected(0, ms(750)) {
		t.Fatal("still suspected after a successful observation")
	}
	if got := reg.Snapshot().Gauges["cluster_suspected_nodes"]; got != 0 {
		t.Fatalf("suspected gauge = %d after recovery, want 0", got)
	}

	// Re-suspecting is a second transition. The recovery gap (400ms)
	// entered the window, so the learned mean is now 175ms and the limit
	// 525ms of silence.
	if !d.Suspected(0, ms(1300)) {
		t.Fatal("not re-suspected after renewed silence")
	}
	if got := reg.Snapshot().Counters["cluster_suspicions"]; got != 2 {
		t.Fatalf("cluster_suspicions = %d, want 2", got)
	}

	// A node never successfully observed is never suspected: there is no
	// arrival history to accrue over, and hard errors speak for themselves.
	if d.Suspected(1, ms(1<<40)) {
		t.Fatal("never-observed node suspected")
	}
	if got := d.SuspectedCount(); got != 1 {
		t.Fatalf("SuspectedCount = %d, want 1", got)
	}
}

func TestDetectorAdaptsToSlowLinks(t *testing.T) {
	// A link that legitimately beats at 1s must not be suspected at the
	// 100ms floor's threshold — the accrual window learns the real gap.
	d := NewDetector(1, DetectorConfig{Interval: 100 * time.Millisecond, Threshold: 3, Window: 4}, nil)
	for i := 0; i <= 3; i++ {
		d.Observe(0, time.Duration(i)*time.Second)
	}
	if d.Suspected(0, 3*time.Second+2500*time.Millisecond) {
		t.Fatal("suspected at 2.5s silence with a learned 1s gap (limit is 3s)")
	}
	if !d.Suspected(0, 3*time.Second+3100*time.Millisecond) {
		t.Fatal("not suspected past 3× the learned gap")
	}
}

func TestDetectorResizeResets(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDetector(2, DetectorConfig{Interval: 10 * time.Millisecond}, reg)
	d.Observe(0, 0)
	if !d.Suspected(0, time.Second) {
		t.Fatal("setup: node 0 not suspected")
	}
	d.Resize(3)
	if got := reg.Snapshot().Gauges["cluster_suspected_nodes"]; got != 0 {
		t.Fatalf("suspected gauge = %d after Resize, want 0", got)
	}
	// Membership changed, indexes shifted: all accrual state is fresh.
	if d.Suspected(0, 2*time.Second) {
		t.Fatal("suspicion survived a Resize")
	}
	if got := d.SuspectedCount(); got != 0 {
		t.Fatalf("SuspectedCount = %d after Resize, want 0", got)
	}
}

// TestSuspicionPreemptiveFailover is the detector acceptance test: a
// cluster with the detector armed (virtual clock) suspects a node that
// goes silent, and PullBags then routes its keys to replicas *without
// ever asking the suspected owner* — zero hard failovers, zero errors,
// bit-exact rows.
func TestSuspicionPreemptiveFailover(t *testing.T) {
	reg := obs.NewRegistry()
	var ns []*ps.Node
	var addrs []string
	for i := 0; i < 3; i++ {
		n := startElasticNode(t)
		ns = append(ns, n)
		addrs = append(addrs, n.Addr())
	}
	var vnow atomic.Int64 // virtual time: the detector never reads a wall clock
	c, err := DialOpts(4, addrs, Options{
		Obs:      reg,
		Detector: &DetectorConfig{Interval: 100 * time.Millisecond, Threshold: 3, Window: 4},
		Clock:    func() time.Duration { return time.Duration(vnow.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	keys := testKeys(36)
	w := trainStep(t, c, 0, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}
	if _, err := c.SyncReplicas(keys); err != nil {
		t.Fatalf("sync replicas: %v", err)
	}

	// Healthy probe rounds at the configured cadence build the accrual
	// baseline for every node.
	for i := 0; i < 4; i++ {
		c.Probe()
		vnow.Add(int64(100 * time.Millisecond))
	}
	if c.Suspected(0) || c.Suspected(1) || c.Suspected(2) {
		t.Fatal("healthy node suspected after regular probe rounds")
	}

	// Node 1 goes silent; after > Threshold × gap of virtual silence the
	// detector suspects it.
	dead := 1
	if err := ns[dead].Close(); err != nil {
		t.Fatal(err)
	}
	c.Probe() // failed ping: no arrival recorded
	vnow.Add(int64(time.Second))
	c.Probe()
	if !c.Suspected(dead) {
		t.Fatal("silent node not suspected past the accrual threshold")
	}
	if c.Suspected(0) || c.Suspected(2) {
		t.Fatal("healthy node co-suspected")
	}

	// Single-key bags: every key answers bit-exactly with no error, and
	// the suspected owner's keys fail over *preemptively* — the hard
	// failover counter stays zero because node 1 was never even asked.
	offs := make([]uint32, len(keys)+1)
	for i := range keys {
		offs[i+1] = uint32(i + 1)
	}
	out := make([]float32, len(keys)*c.dim)
	if err := c.PullBags(false, offs, keys, out); err != nil {
		t.Fatalf("pull-bags with suspected node: %v", err)
	}
	for i := range out {
		if out[i] != w[i] {
			t.Fatalf("row [%d] = %v, want %v (bit-exact replica)", i, out[i], w[i])
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["cluster_suspicions"]; got < 1 {
		t.Fatalf("cluster_suspicions = %d, want >= 1", got)
	}
	if got := s.Counters["cluster_failovers_suspect"]; got < 1 {
		t.Fatalf("cluster_failovers_suspect = %d, want >= 1", got)
	}
	if got := s.Counters["cluster_failovers_hard"]; got != 0 {
		t.Fatalf("cluster_failovers_hard = %d, want 0 (suspicion must preempt the owner read)", got)
	}
	if agg, sus := s.Counters["cluster_failovers"], s.Counters["cluster_failovers_suspect"]; agg != sus {
		t.Fatalf("cluster_failovers = %d, want %d (all suspect-caused)", agg, sus)
	}
}

// TestStaleFallbackWhenAllReplicasDegraded: when a key's owner AND its
// replica are both gone, a refreshed stale tier answers the read —
// flagged stale, bit-exact to the last refresh — instead of erroring.
func TestStaleFallbackWhenAllReplicasDegraded(t *testing.T) {
	reg := obs.NewRegistry()
	stale := serve.NewStaleTier(0)
	var ns []*ps.Node
	var addrs []string
	for i := 0; i < 2; i++ {
		n := startElasticNode(t)
		ns = append(ns, n)
		addrs = append(addrs, n.Addr())
	}
	c, err := DialOpts(4, addrs, Options{Obs: reg, Stale: stale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	keys := testKeys(24)
	w := trainStep(t, c, 0, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}

	// A serving read tracks the hot keys; the refresh pass snapshots them.
	offs := make([]uint32, len(keys)+1)
	for i := range keys {
		offs[i+1] = uint32(i + 1)
	}
	out := make([]float32, len(keys)*c.dim)
	if res, err := c.PullBagsResult(false, offs, keys, out); err != nil || res.Stale {
		t.Fatalf("healthy read = (stale=%v, %v)", res.Stale, err)
	}
	if err := c.RefreshStale(); err != nil {
		t.Fatalf("refresh stale: %v", err)
	}
	if got := stale.Len(); got != len(keys) {
		t.Fatalf("stale tier holds %d rows after refresh, want %d", got, len(keys))
	}

	// Owner and replica of every key die.
	for _, n := range ns {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for i := range out {
		out[i] = 777
	}
	res, err := c.PullBagsResult(false, offs, keys, out)
	if err != nil {
		t.Fatalf("degraded read errored: %v (the stale tier must answer)", err)
	}
	if !res.Stale {
		t.Fatal("degraded read not flagged stale")
	}
	for i := range out {
		if out[i] != w[i] {
			t.Fatalf("stale row [%d] = %v, want %v (bit-exact last refresh)", i, out[i], w[i])
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["serve_stale_fallbacks"]; got < 1 {
		t.Fatalf("serve_stale_fallbacks = %d, want >= 1", got)
	}
	if got := s.Counters["serve_stale_hits"]; got < int64(len(keys)) {
		t.Fatalf("serve_stale_hits = %d, want >= %d", got, len(keys))
	}
}

// TestServingGrayFailureSoak runs the full degradation ladder against a
// silently partitioned owner: hard failovers with retry budget and
// breaker while the detector accrues, suspicion-preempted failovers
// after, stale answers when everything is gone — zero caller-surfaced
// errors and every read far under the owner's deadline.
func TestServingGrayFailureSoak(t *testing.T) {
	var ns []*ps.Node
	var addrs []string
	for i := 0; i < 3; i++ {
		n := startElasticNode(t)
		ns = append(ns, n)
		addrs = append(addrs, n.Addr())
	}

	// Train and replicate through a clean client; the chaos client below
	// only serves.
	trainer, err := DialOpts(4, addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { trainer.Close() })
	keys := testKeys(36)
	w := trainStep(t, trainer, 0, keys, 1)
	for i := range w {
		w[i] -= 0.1
	}
	if _, err := trainer.SyncReplicas(keys); err != nil {
		t.Fatal(err)
	}

	// From the serving client's point of view node 1's data link is
	// silently partitioned from the first byte: every write is injected
	// silent loss (an instant timeout). The probe link stays healthy for
	// five writes (the handshake plus four probe rounds) so the detector
	// builds an arrival history — a node never successfully observed is
	// deliberately never suspected — and then goes silent too.
	inj := faultinject.New(7,
		faultinject.Rule{Point: faultinject.PointConnWrite, Label: "node1", Kind: faultinject.KindPartition, Prob: 1},
		faultinject.Rule{Point: faultinject.PointConnWrite, Label: "node1/probe", Kind: faultinject.KindPartition, Prob: 1, From: 6},
	)
	reg := obs.NewRegistry()
	stale := serve.NewStaleTier(0)
	var vnow atomic.Int64
	c, err := DialOpts(4, addrs, Options{
		RPC: rpc.Options{
			Retry:        rpc.RetryPolicy{MaxAttempts: 4, Backoff: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond, Seed: 7},
			Budget:       rpc.NewBudget(4, 0),
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
		Breakers: true,
		Detector: &DetectorConfig{Interval: 100 * time.Millisecond, Threshold: 3, Window: 4},
		Clock:    func() time.Duration { return time.Duration(vnow.Load()) },
		Stale:    stale,
		Inject:   inj,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	offs := make([]uint32, len(keys)+1)
	for i := range keys {
		offs[i+1] = uint32(i + 1)
	}
	out := make([]float32, len(keys)*c.dim)
	var worst time.Duration
	read := func(label string, wantStale bool) {
		t.Helper()
		for i := range out {
			out[i] = 777
		}
		start := time.Now()
		res, err := c.PullBagsResult(false, offs, keys, out)
		took := time.Since(start)
		if took > worst {
			worst = took
		}
		if err != nil {
			t.Fatalf("%s: serving read errored: %v", label, err)
		}
		if res.Stale != wantStale {
			t.Fatalf("%s: stale = %v, want %v", label, res.Stale, wantStale)
		}
		for i := range out {
			if out[i] != w[i] {
				t.Fatalf("%s: row [%d] = %v, want %v (bit-exact)", label, i, out[i], w[i])
			}
		}
	}

	// Phase 1 — the detector has no evidence yet: reads against the
	// partitioned owner burn their (instantly failing) attempts, the
	// breaker opens, the retry budget empties, and every read still
	// answers via hard failover to replicas.
	for r := 0; r < 3; r++ {
		read("phase1 hard-failover", false)
	}
	if err := c.RefreshStale(); err != nil {
		t.Fatalf("refresh stale: %v", err)
	}

	// Phase 2 — probe rounds under the virtual clock: nodes 0/2 keep
	// answering, node 1 accrues silence past the threshold.
	for i := 0; i < 4; i++ {
		c.Probe()
		vnow.Add(int64(100 * time.Millisecond))
	}
	vnow.Add(int64(time.Second))
	c.Probe()
	if !c.Suspected(1) {
		t.Fatal("partitioned node not suspected after silent probe rounds")
	}

	// Phase 3 — suspicion preempts: reads keep answering, now without
	// ever touching the suspected owner.
	for r := 0; r < 3; r++ {
		read("phase3 suspicion-preempted", false)
	}

	// Phase 4 — owners and replicas all gone: the stale tier answers,
	// flagged, bit-exact to the refresh taken while healthy.
	for _, n := range ns {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
	read("phase4 stale", true)

	// Every read stayed far under the 2s owner deadline: injected
	// partitions are instant timeouts, suspicion skips the owner
	// entirely, and nothing ever waited out a gray peer.
	if worst > 10*time.Second {
		t.Fatalf("worst serving read took %v; degradation must bound latency", worst)
	}

	s := reg.Snapshot()
	for counter, min := range map[string]int64{
		"cluster_suspicions":         1,
		"cluster_failovers_hard":     1,
		"cluster_failovers_suspect":  1,
		"rpc_breaker_open":           1,
		"rpc_retry_budget_exhausted": 1,
		"serve_stale_fallbacks":      1,
	} {
		if got := s.Counters[counter]; got < min {
			t.Fatalf("%s = %d, want >= %d", counter, got, min)
		}
	}
}

// TestNoGoroutineLeakAfterClose is the post-soak leak gate: a client with
// the prober running, plus its probe connections and nodes, must unwind
// completely on Close.
func TestNoGoroutineLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()

	var ns []*ps.Node
	var addrs []string
	for i := 0; i < 2; i++ {
		n := startElasticNode(t)
		ns = append(ns, n)
		addrs = append(addrs, n.Addr())
	}
	c, err := DialOpts(4, addrs, Options{
		Detector: &DetectorConfig{Interval: 5 * time.Millisecond},
		Obs:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.StartProber(2 * time.Millisecond)
	keys := testKeys(8)
	trainStep(t, c, 0, keys, 1)
	time.Sleep(20 * time.Millisecond) // let several probe rounds run
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
