package cluster

import (
	"testing"

	"openembedding/internal/rpc"
)

const ringSampleKeys = 100_000

func ringIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	return ids
}

// TestRingDeterministic: two rings built from the same id list agree on
// every owner, and a ring grown via joinPlan is the same placement as one
// built directly from the combined id list — the property that lets a
// restarted coordinator recompute an interrupted migration's exact plan.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(ringIDs(5)), NewRing(ringIDs(5))
	grown, _ := NewRing(ringIDs(4)).joinPlan(4)
	for k := uint64(0); k < ringSampleKeys; k++ {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owners differ across identical rings", k)
		}
		if a.Owner(k) != grown.Owner(k) {
			t.Fatalf("key %d: grown ring disagrees with directly built ring", k)
		}
	}
}

// TestRingRemapBound pins the elasticity contract: growing N -> N+1 nodes
// remaps at most 2/N of a 100k-key sample, and every remapped key moves TO
// the new node (a join never shuffles keys between existing nodes).
func TestRingRemapBound(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		old := NewRing(ringIDs(n))
		grown, _ := old.joinPlan(uint64(n))
		moved := 0
		for k := uint64(0); k < ringSampleKeys; k++ {
			a, b := old.Owner(k), grown.Owner(k)
			if a == b {
				continue
			}
			if b != n {
				t.Fatalf("n=%d key %d moved %d -> %d, not to the new node", n, k, a, b)
			}
			moved++
		}
		if bound := 2 * ringSampleKeys / n; moved > bound {
			t.Fatalf("n=%d: join remapped %d/%d keys, want <= %d (2/N)", n, moved, ringSampleKeys, bound)
		}
		if moved == 0 {
			t.Fatalf("n=%d: join moved nothing", n)
		}
	}
}

// TestRingBalance: with 64 vnodes per node, every node's share of a 100k
// key sample stays within a factor ~2 of fair.
func TestRingBalance(t *testing.T) {
	const n = 4
	r := NewRing(ringIDs(n))
	counts := make([]int, n)
	for k := uint64(0); k < ringSampleKeys; k++ {
		counts[r.Owner(k)]++
	}
	fair := ringSampleKeys / n
	for i, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("node %d owns %d keys, fair share %d (counts %v)", i, c, fair, counts)
		}
	}
}

// TestRingHashPinnedToWire pins cluster.KeyHash to rpc.KeyHash: the
// coordinator's move plan and the server-side range predicates must select
// exactly the same keys.
func TestRingHashPinnedToWire(t *testing.T) {
	for k := uint64(0); k < 10_000; k++ {
		if KeyHash(k) != rpc.KeyHash(k) {
			t.Fatalf("key %d: cluster hash %x != wire hash %x", k, KeyHash(k), rpc.KeyHash(k))
		}
	}
}

// TestRingReplicas: the secondary is a distinct node (or -1 on a
// single-node ring), and Replicas returns the owner first.
func TestRingReplicas(t *testing.T) {
	r := NewRing(ringIDs(3))
	var buf [2]int
	for k := uint64(0); k < 10_000; k++ {
		own, sec := r.Owner(k), r.Secondary(k)
		if sec == own || sec < 0 || sec >= 3 {
			t.Fatalf("key %d: owner %d secondary %d", k, own, sec)
		}
		reps := r.Replicas(k, 2, buf[:0])
		if len(reps) != 2 || reps[0] != own || reps[1] != sec {
			t.Fatalf("key %d: replicas %v, want [%d %d]", k, reps, own, sec)
		}
	}
	if s := NewRing(ringIDs(1)).Secondary(7); s != -1 {
		t.Fatalf("single-node secondary = %d, want -1", s)
	}
}

// TestJoinPlanCoversExactly: the union of a join plan's intervals covers
// precisely the keys the new node owns in the grown ring, each attributed
// to the key's old owner as source.
func TestJoinPlanCoversExactly(t *testing.T) {
	old := NewRing(ringIDs(3))
	grown, moves := old.joinPlan(3)
	bySrc := make(map[int][]Interval)
	for _, mv := range moves {
		if mv.dst != 3 {
			t.Fatalf("join move dst = %d, want 3", mv.dst)
		}
		bySrc[mv.src] = append(bySrc[mv.src], mv.ivs...)
	}
	for k := uint64(0); k < 20_000; k++ {
		movesToNew := grown.Owner(k) == 3
		covered := false
		for src, ivs := range bySrc {
			if ContainsKey(ivs, k) {
				covered = true
				if want := old.Owner(k); src != want {
					t.Fatalf("key %d covered by source %d, old owner %d", k, src, want)
				}
			}
		}
		if covered != movesToNew {
			t.Fatalf("key %d: covered=%v but moves-to-new=%v", k, covered, movesToNew)
		}
	}
}

// TestLeavePlanCoversExactly: a leave plan's intervals cover precisely the
// leaving node's keys, each attributed to the key's new owner, and
// newIndex maps the survivors in order.
func TestLeavePlanCoversExactly(t *testing.T) {
	old := NewRing(ringIDs(4))
	leaving := 1
	shrunk, moves, newIndex := old.leavePlan(leaving)
	if newIndex[leaving] != -1 {
		t.Fatalf("newIndex[leaving] = %d, want -1", newIndex[leaving])
	}
	byDst := make(map[int][]Interval)
	for _, mv := range moves {
		if mv.src != leaving {
			t.Fatalf("leave move src = %d, want %d", mv.src, leaving)
		}
		byDst[mv.dst] = append(byDst[mv.dst], mv.ivs...)
	}
	for k := uint64(0); k < 20_000; k++ {
		wasLeaving := old.Owner(k) == leaving
		covered := false
		for dstOld, ivs := range byDst {
			if ContainsKey(ivs, k) {
				covered = true
				if want := newIndex[dstOld]; shrunk.Owner(k) != want {
					t.Fatalf("key %d covered by old-dst %d (new %d), shrunk owner %d",
						k, dstOld, want, shrunk.Owner(k))
				}
			}
		}
		if covered != wasLeaving {
			t.Fatalf("key %d: covered=%v but was-leaving=%v", k, covered, wasLeaving)
		}
		if !wasLeaving && shrunk.Owner(k) != newIndex[old.Owner(k)] {
			t.Fatalf("key %d: unmoved key changed owner %d -> %d", k, old.Owner(k), shrunk.Owner(k))
		}
	}
}

// TestModuloPlacementPinned: PlacementModulo routes exactly like the
// legacy Partition function — the pinned pre-elasticity equivalence.
func TestModuloPlacementPinned(t *testing.T) {
	c, _ := startClusterOpts(t, "dram-ps", 3, Options{Placement: PlacementModulo})
	if c.ring.Load() != nil {
		t.Fatal("modulo placement built a ring")
	}
	if got := c.Epoch(); got != 0 {
		t.Fatalf("modulo epoch = %d, want 0", got)
	}
	for k := uint64(0); k < 10_000; k++ {
		if got, want := c.ownerOf(k), Partition(k, 3); got != want {
			t.Fatalf("key %d: modulo owner %d, want Partition %d", k, got, want)
		}
	}
	// Fixed membership: elastic operations refuse.
	if err := c.Join(0, "127.0.0.1:1"); err == nil {
		t.Fatal("modulo Join succeeded")
	}
	if err := c.Leave(0, 1); err == nil {
		t.Fatal("modulo Leave succeeded")
	}
	if _, err := c.SyncReplicas([]uint64{1}); err == nil {
		t.Fatal("modulo SyncReplicas succeeded")
	}
	// And the training path still works end to end.
	keys := []uint64{1, 2, 3, 4, 5, 6}
	dst := make([]float32, len(keys)*4)
	if err := c.Pull(0, keys, dst); err != nil {
		t.Fatal(err)
	}
}
