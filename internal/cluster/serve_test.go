package cluster

import (
	"path/filepath"
	"strings"
	"testing"

	"openembedding/internal/ps"
)

// startServeCluster starts nodes with the serving hook enabled and returns
// a client, plus the trained keys' post-push rows (one SGD step, lr=0.1,
// g=1) indexed key*dim as the pooling reference.
func startServeCluster(t *testing.T, nodes int, keys []uint64) (*Client, []float32) {
	t.Helper()
	var addrs []string
	for i := 0; i < nodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine:        "pmem-oe",
			Serve:         true,
			Store:         storeConfig(),
			CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
	}
	c, err := Dial(4, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	dim := c.Dim()
	w := make([]float32, len(keys)*dim)
	if err := c.Pull(0, keys, w); err != nil {
		t.Fatal(err)
	}
	if err := c.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
	grads := make([]float32, len(keys)*dim)
	for i := range grads {
		grads[i] = 1
	}
	if err := c.Push(0, keys, grads); err != nil {
		t.Fatal(err)
	}
	if err := c.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	for i := range w {
		w[i] -= 0.1 // post-push rows, what serving returns
	}
	return c, w
}

// TestClusterPullBags: bags whose keys span nodes are pooled from per-node
// partial sums in deterministic node order; sum and mean agree with a
// client-side per-key reference.
func TestClusterPullBags(t *testing.T) {
	const nodes = 3
	keys := make([]uint64, 24)
	for i := range keys {
		keys[i] = uint64(i*7 + 1) // spreads across all 3 partitions
	}
	c, w := startServeCluster(t, nodes, keys)
	dim := c.Dim()

	// Every bag of size >= nodes necessarily spans partitions somewhere;
	// verify explicitly that at least one bag mixes owners.
	offsets := []uint32{0, 4, 4, 9, 12, 24}
	bagKeys := keys
	spans := false
	for b := 0; b+1 < len(offsets); b++ {
		owners := map[int]bool{}
		for _, k := range bagKeys[offsets[b]:offsets[b+1]] {
			owners[c.ownerOf(k)] = true
		}
		if len(owners) > 1 {
			spans = true
		}
	}
	if !spans {
		t.Fatal("test bags never span nodes; pick different keys")
	}

	for _, mean := range []bool{false, true} {
		bags := len(offsets) - 1
		out := make([]float32, bags*dim)
		for i := range out {
			out[i] = 777 // must be fully overwritten, empty bag included
		}
		if err := c.PullBags(mean, offsets, bagKeys, out); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < bags; b++ {
			lo, hi := int(offsets[b]), int(offsets[b+1])
			want := make([]float32, dim)
			for j := lo; j < hi; j++ {
				for i := 0; i < dim; i++ {
					want[i] += w[j*dim+i]
				}
			}
			if mean && hi > lo {
				inv := 1 / float32(hi-lo)
				for i := range want {
					want[i] *= inv
				}
			}
			for i := 0; i < dim; i++ {
				got := out[b*dim+i]
				d := got - want[i]
				if d > 1e-4 || d < -1e-4 {
					t.Fatalf("mean=%v bag %d[%d] = %v, want %v", mean, b, i, got, want[i])
				}
			}
		}
	}

	// Determinism: the same gather twice is bit-identical (fixed node-order
	// combination), even though per-node responses arrive concurrently.
	bags := len(offsets) - 1
	a := make([]float32, bags*dim)
	bb := make([]float32, bags*dim)
	if err := c.PullBags(false, offsets, bagKeys, a); err != nil {
		t.Fatal(err)
	}
	if err := c.PullBags(false, offsets, bagKeys, bb); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("repeated gather differs at %d: %v vs %v", i, a[i], bb[i])
		}
	}
}

// TestClusterPullBagsValidation: malformed requests fail fast client-side,
// before any node is contacted.
func TestClusterPullBagsValidation(t *testing.T) {
	keys := []uint64{1, 2, 3}
	c, _ := startServeCluster(t, 2, keys)
	dim := c.Dim()

	cases := []struct {
		name    string
		offsets []uint32
		keys    []uint64
		outLen  int
		substr  string
	}{
		{"empty offsets", nil, keys, dim, "offsets"},
		{"first not zero", []uint32{1, 3}, keys, dim, "offsets"},
		{"non-monotone", []uint32{0, 2, 1}, keys, 2 * dim, "offsets"},
		{"last short of keys", []uint32{0, 2}, keys, dim, "offsets"},
		{"offset past end", []uint32{0, 4}, keys, dim, "offsets"},
		{"wrong out length", []uint32{0, 3}, keys, dim + 1, "out has"},
	}
	for _, tc := range cases {
		out := make([]float32, tc.outLen)
		err := c.PullBags(false, tc.offsets, tc.keys, out)
		if err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.substr)
		}
	}

	// A single-key gather still works after the rejected ones.
	out := make([]float32, dim)
	if err := c.PullBags(false, []uint32{0, 1}, keys[:1], out); err != nil {
		t.Errorf("valid gather after rejects: %v", err)
	}
}
