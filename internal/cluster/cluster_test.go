package cluster

import (
	"math/rand"
	"path/filepath"
	"testing"

	"openembedding/internal/optim"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
)

func storeConfig() psengine.Config {
	return psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 4096, CacheEntries: 64}
}

func startCluster(t *testing.T, engine string, nodes int) *Client {
	t.Helper()
	var addrs []string
	for i := 0; i < nodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine:        engine,
			Store:         storeConfig(),
			CheckpointDir: filepath.Join(t.TempDir(), "ckpt"),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
	}
	c, err := Dial(4, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPartitionStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		counts := make([]int, n)
		for k := uint64(0); k < 10000; k++ {
			p := Partition(k, n)
			if p < 0 || p >= n {
				t.Fatalf("partition %d out of range for %d nodes", p, n)
			}
			if p != Partition(k, n) {
				t.Fatal("partition not deterministic")
			}
			counts[p]++
		}
		// Roughly balanced: no node under half the fair share.
		for i, c := range counts {
			if c < 10000/n/2 {
				t.Fatalf("node %d of %d got %d keys (unbalanced)", i, n, c)
			}
		}
	}
}

// TestClusterMatchesSingleEngine drives the same workload through a 3-node
// PMem-OE cluster over TCP and through a single local engine; per-key state
// must agree exactly (entries are independent, so sharding cannot change
// values).
func TestClusterMatchesSingleEngine(t *testing.T) {
	cl := startCluster(t, "pmem-oe", 3)
	single := startCluster(t, "pmem-oe", 1)

	rng := rand.New(rand.NewSource(11))
	for b := int64(0); b < 8; b++ {
		seen := map[uint64]bool{}
		var keys []uint64
		for len(keys) < 6 {
			k := uint64(rng.Intn(300))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		grads := make([]float32, len(keys)*4)
		for i := range grads {
			grads[i] = float32(rng.NormFloat64())
		}
		a := make([]float32, len(keys)*4)
		bvals := make([]float32, len(keys)*4)
		if err := cl.Pull(b, keys, a); err != nil {
			t.Fatal(err)
		}
		if err := single.Pull(b, keys, bvals); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != bvals[i] {
				t.Fatalf("batch %d: cluster[%d]=%v single=%v", b, i, a[i], bvals[i])
			}
		}
		for _, c := range []*Client{cl, single} {
			if err := c.EndPullPhase(b); err != nil {
				t.Fatal(err)
			}
			if err := c.Push(b, keys, grads); err != nil {
				t.Fatal(err)
			}
			if err := c.EndBatch(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 {
		t.Fatal("cluster stats empty")
	}
}

func TestClusterCheckpoint(t *testing.T) {
	cl := startCluster(t, "pmem-oe", 2)
	keys := []uint64{1, 2, 3, 4, 5}
	grads := make([]float32, len(keys)*4)
	dst := make([]float32, len(keys)*4)
	for b := int64(0); b < 3; b++ {
		if err := cl.Pull(b, keys, dst); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndPullPhase(b); err != nil {
			t.Fatal(err)
		}
		if err := cl.Push(b, keys, grads); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.RequestCheckpoint(2); err != nil {
		t.Fatal(err)
	}
	// Drive one more batch so the co-designed checkpoint completes.
	if err := cl.Pull(3, keys, dst); err != nil {
		t.Fatal(err)
	}
	cl.EndPullPhase(3)
	cl.Push(3, keys, grads)
	cl.EndBatch(3)

	v, err := cl.CompletedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("cluster completed checkpoint = %d, want 2", v)
	}
}

func TestDialFailures(t *testing.T) {
	if _, err := Dial(4, nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := Dial(4, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("dead address accepted")
	}
}

func TestClusterBufferValidation(t *testing.T) {
	cl := startCluster(t, "dram-ps", 2)
	if err := cl.Pull(0, []uint64{1}, make([]float32, 3)); err == nil {
		t.Fatal("bad pull buffer accepted")
	}
	if err := cl.Push(0, []uint64{1}, make([]float32, 5)); err == nil {
		t.Fatal("bad push buffer accepted")
	}
}
