package cluster

import (
	"fmt"
	"time"

	"openembedding/internal/rpc"
)

// Live resharding (DESIGN.md §15). Join and Leave reshape the cluster
// while it keeps training and serving, by driving the crash-safe
// migration protocol per arc move:
//
//  0. hygiene  — DropRange(ivs) on the target, so a re-run after a
//     coordinator crash never double-counts half-adopted state.
//  1. copy     — paged MigrateRange/AdoptRange; every adopted entry is
//     durable (flushed) at adopt time, and adoption is idempotent.
//  2. deltas   — repeat with since = lastBatch+1 until a round copies
//     nothing and no new batch landed (migrateHook lets tests train
//     between rounds to force this).
//  3. seal     — a cluster-wide durable checkpoint at the final batch,
//     so post-flip recovery lands on post-migration state.
//  4. flip     — the ring's ownership epoch is bumped and every
//     connection re-adopts it; stale clients are fenced server-side.
//  5. cleanup  — DropRange(ivs) on the source, durably erasing the
//     moved records (idempotent, re-issuable after a crash).
//
// A crash before the seal recovers under the old ring (the re-run
// restarts from step 0); a crash after the seal recovers under the new
// ring and re-issues only the idempotent cleanup. The coordinator itself
// holds no durable state: a fresh client re-derives the plan from the
// membership history.

// migratePage bounds one MigrateRange page (keys per RPC).
const migratePage = 1024

// sinceAll exports every version — the full-copy floor for round 0.
const sinceAll = int64(-1) << 62

// wireIntervals converts ring arcs to their wire form.
func wireIntervals(ivs []Interval) []rpc.HashInterval {
	w := make([]rpc.HashInterval, len(ivs))
	for i, iv := range ivs {
		w[i] = rpc.HashInterval{Lo: iv.Lo, Hi: iv.Hi}
	}
	return w
}

// migrateMove streams one arc set from source node src to dst: pages of
// entries with version >= since, adopted durably on dst. Returns the
// number of entries copied.
func (c *Client) migrateMove(dst *rpc.Client, src int, ivs []rpc.HashInterval, since int64) (int, error) {
	copied := 0
	after := uint64(0)
	for {
		entries, more, err := c.nodes[src].MigrateRange(since, after, migratePage, ivs)
		if err != nil {
			return copied, c.nodeErr(src, fmt.Errorf("migrate range: %w", err))
		}
		if len(entries) > 0 {
			if err := dst.AdoptRange(entries); err != nil {
				return copied, fmt.Errorf("cluster: adopt range: %w", err)
			}
			after = entries[len(entries)-1].Key
			copied += len(entries)
		}
		if !more {
			return copied, nil
		}
	}
}

// copyRounds runs the copy phase for a move set: round 0 copies
// everything, later rounds replay only deltas pushed since the previous
// round's batch floor. dstFor maps a move to its target connection.
// Returns the total entries copied and the final sealed batch.
func (c *Client) copyRounds(moves []move, dstFor func(move) *rpc.Client, batch int64) (int, int64, error) {
	total := 0
	floor := sinceAll
	cur := batch
	for round := 0; ; round++ {
		copied := 0
		for _, mv := range moves {
			n, err := c.migrateMove(dstFor(mv), mv.src, wireIntervals(mv.ivs), floor)
			copied += n
			if err != nil {
				return total + copied, cur, err
			}
		}
		total += copied
		next := cur
		if c.migrateHook != nil {
			next = c.migrateHook(round, cur)
		}
		done := copied == 0 && next == cur
		floor, cur = cur+1, next
		if done {
			return total, cur, nil
		}
	}
}

// verifyMove proves the copy took: source and target page through the
// moved intervals in lockstep (exports are key-sorted with equal page
// size, so equal sets align page-by-page) and every (key, version) pair
// must match. This is the pre-seal guard of the crash matrix: a target
// that crash-restarted mid-copy recovers to its durable checkpoint and
// silently sheds adopted entries newer than it — and transparent RPC
// retries would otherwise carry the coordinator right past the restart
// into a data-losing ownership flip. A mismatch aborts the migration;
// the re-run starts from the hygiene drop and recopies.
func (c *Client) verifyMove(dst *rpc.Client, src int, ivs []rpc.HashInterval) error {
	var sAfter, tAfter uint64
	for page := 0; ; page++ {
		se, sMore, err := c.nodes[src].MigrateRange(sinceAll, sAfter, migratePage, ivs)
		if err != nil {
			return c.nodeErr(src, fmt.Errorf("verify export: %w", err))
		}
		te, tMore, err := dst.MigrateRange(sinceAll, tAfter, migratePage, ivs)
		if err != nil {
			return fmt.Errorf("cluster: verify target export: %w", err)
		}
		if len(se) != len(te) || sMore != tMore {
			return fmt.Errorf("cluster: migration verify failed: source %d entries (more=%v) vs target %d (more=%v) at page %d; re-run the migration",
				len(se), sMore, len(te), tMore, page)
		}
		for i := range se {
			if se[i].Key != te[i].Key || se[i].Version != te[i].Version {
				return fmt.Errorf("cluster: migration verify failed: source (key %d, v%d) vs target (key %d, v%d); re-run the migration",
					se[i].Key, se[i].Version, te[i].Key, te[i].Version)
			}
		}
		if !sMore {
			return nil
		}
		sAfter, tAfter = se[len(se)-1].Key, te[len(te)-1].Key
	}
}

// ensureCheckpoint drives node cl to a durable checkpoint at batch: skip
// if already there, else request and poll (CompletedCheckpoint advances
// the server's checkpoint pump).
func (c *Client) ensureCheckpoint(cl *rpc.Client, batch int64) error {
	v, err := cl.CompletedCheckpoint()
	if err != nil {
		return err
	}
	if v >= batch {
		return nil
	}
	// The request may be rejected if an earlier (crashed) run already
	// queued this checkpoint; the completion poll below is the authority,
	// so the request error is only reported if the poll times out.
	reqErr := cl.RequestCheckpoint(batch)
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := cl.CompletedCheckpoint()
		if err != nil {
			return err
		}
		if v >= batch {
			return nil
		}
		if time.Now().After(deadline) {
			if reqErr != nil {
				return fmt.Errorf("checkpoint %d not durable (at %d): %w", batch, v, reqErr)
			}
			return fmt.Errorf("checkpoint %d not durable (at %d)", batch, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// adoptEpochs re-adopts the server epoch on the given connections (the
// migration RPCs fence the nodes they mutate; the coordinator's own
// connections follow the fence here, like cluster.Recover does).
func (c *Client) adoptEpochs(cls []*rpc.Client) error {
	for i, cl := range cls {
		if _, err := cl.AdoptEpoch(); err != nil {
			return fmt.Errorf("cluster: adopt epoch (conn %d): %w", i, err)
		}
	}
	return nil
}

// Join adds the node at addr to the ring and live-migrates its arcs from
// their current owners. batch is the last sealed training batch; the
// migration seals a cluster-wide checkpoint at the final batch before
// flipping ownership. Requires PlacementRing. Join must not race other
// calls on this Client (it is the coordinator's own training driver).
func (c *Client) Join(batch int64, addr string) error {
	r := c.ring.Load()
	if r == nil {
		return fmt.Errorf("cluster: join: modulo placement is fixed-membership")
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	nr, moves := r.joinPlan(c.nextID)
	nc, err := c.dialNode(addr, len(c.nodes))
	if err != nil {
		return fmt.Errorf("cluster: join %s: %w", addr, err)
	}
	// Step 0: hygiene — drop the moving arcs on the target so a re-run
	// after a coordinator crash starts from a clean slate.
	var allIvs []rpc.HashInterval
	for _, mv := range moves {
		allIvs = append(allIvs, wireIntervals(mv.ivs)...)
	}
	if _, err := nc.DropRange(allIvs); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: join %s: target hygiene drop: %w", addr, err)
	}
	if _, err := nc.AdoptEpoch(); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: join %s: adopt epoch: %w", addr, err)
	}
	// Steps 1–2: full copy, then delta rounds until quiescent.
	total, cur, err := c.copyRounds(moves, func(move) *rpc.Client { return nc }, batch)
	if err != nil {
		nc.Close()
		return err
	}
	// Pre-seal verification: the copy must prove itself before ownership
	// can flip (a restarted target sheds un-checkpointed adopts).
	for _, mv := range moves {
		if err := c.verifyMove(nc, mv.src, wireIntervals(mv.ivs)); err != nil {
			nc.Close()
			return err
		}
	}
	// The adopts fenced the target; re-adopt before sealing through it.
	if _, err := nc.AdoptEpoch(); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: join %s: adopt epoch: %w", addr, err)
	}
	// Step 3: seal — the fresh target first seals cur (it has run no
	// batches), then every node reaches a durable checkpoint at cur.
	if err := nc.EndBatch(cur); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: join %s: seal end-batch %d: %w", addr, cur, err)
	}
	for i, cl := range c.nodes {
		if err := c.ensureCheckpoint(cl, cur); err != nil {
			nc.Close()
			return c.nodeErr(i, fmt.Errorf("seal: %w", err))
		}
	}
	if err := c.ensureCheckpoint(nc, cur); err != nil {
		nc.Close()
		return fmt.Errorf("cluster: join %s: seal: %w", addr, err)
	}
	// Step 4: flip — membership tables and the ring's ownership epoch.
	c.nodes = append(c.nodes, nc)
	c.addrs = append(c.addrs, addr)
	c.ids = append(c.ids, c.nextID)
	c.nextID++
	c.ring.Store(nr.withEpoch(r.Epoch() + 1))
	// Realign failure detection with the grown membership (indexes moved;
	// the joiner needs a probe connection).
	c.resizeHealth()
	// Step 5: cleanup — durably erase the moved arcs from their sources,
	// then follow the fences those drops raised.
	for _, mv := range moves {
		if _, err := c.nodes[mv.src].DropRange(wireIntervals(mv.ivs)); err != nil {
			return c.nodeErr(mv.src, fmt.Errorf("cleanup drop: %w", err))
		}
	}
	if err := c.adoptEpochs(c.nodes); err != nil {
		return err
	}
	c.migrations.Add(1)
	c.migKeys.Add(int64(total))
	if c.reg != nil {
		c.migrationNS.Observe(c.reg.Now() - start)
	}
	return nil
}

// Leave removes node (by index) from the ring, live-migrating its arcs to
// the remaining owners, and closes its connection. batch is the last
// sealed training batch. Requires PlacementRing and at least two nodes.
// Leave must not race other calls on this Client.
func (c *Client) Leave(batch int64, node int) error {
	r := c.ring.Load()
	if r == nil {
		return fmt.Errorf("cluster: leave: modulo placement is fixed-membership")
	}
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("cluster: leave: no node %d", node)
	}
	if len(c.nodes) < 2 {
		return fmt.Errorf("cluster: leave: cannot remove the last node")
	}
	var start time.Duration
	if c.reg != nil {
		start = c.reg.Now()
	}
	nr, moves, newIndex := r.leavePlan(node)
	// Step 0: hygiene drops on every target.
	for _, mv := range moves {
		if _, err := c.nodes[mv.dst].DropRange(wireIntervals(mv.ivs)); err != nil {
			return c.nodeErr(mv.dst, fmt.Errorf("target hygiene drop: %w", err))
		}
	}
	if err := c.adoptEpochs(c.nodes); err != nil {
		return err
	}
	// Steps 1–2: copy + delta rounds (sources all = leaving node; dst per
	// move, indexed in the pre-flip table).
	total, cur, err := c.copyRounds(moves, func(mv move) *rpc.Client { return c.nodes[mv.dst] }, batch)
	if err != nil {
		return err
	}
	// Pre-seal verification, per target (see verifyMove).
	for _, mv := range moves {
		if err := c.verifyMove(c.nodes[mv.dst], mv.src, wireIntervals(mv.ivs)); err != nil {
			return err
		}
	}
	// The adopts fenced the targets; follow before sealing through them.
	if err := c.adoptEpochs(c.nodes); err != nil {
		return err
	}
	// Step 3: seal on the remaining nodes (the leaver's data is now
	// owned elsewhere; its checkpoint no longer gates the cluster).
	for i, cl := range c.nodes {
		if i == node {
			continue
		}
		if err := c.ensureCheckpoint(cl, cur); err != nil {
			return c.nodeErr(i, fmt.Errorf("seal: %w", err))
		}
	}
	// Step 4: flip — remove the node from the tables, bump the epoch.
	leaving := c.nodes[node]
	nn := make([]*rpc.Client, 0, len(c.nodes)-1)
	na := make([]string, 0, len(c.addrs)-1)
	ni := make([]uint64, 0, len(c.ids)-1)
	for i := range c.nodes {
		if newIndex[i] < 0 {
			continue
		}
		nn = append(nn, c.nodes[i])
		na = append(na, c.addrs[i])
		ni = append(ni, c.ids[i])
	}
	c.nodes, c.addrs, c.ids = nn, na, ni
	c.ring.Store(nr.withEpoch(r.Epoch() + 1))
	// Realign failure detection with the shrunk membership (indexes moved;
	// the leaver's probe connection must go).
	c.resizeHealth()
	// Step 5: the leaver exits the cluster; its durable image goes with
	// it, so no cleanup drop is needed. Close the connection.
	leaving.Close() //nolint:errcheck // the node is leaving; a close error changes nothing
	c.migrations.Add(1)
	c.migKeys.Add(int64(total))
	if c.reg != nil {
		c.migrationNS.Observe(c.reg.Now() - start)
	}
	return nil
}

// SyncReplicas refreshes the failover replicas for keys: each key's row
// is read from its owner and pushed into its replica node's serve
// overlay (R=2). Keys without a replica (single-node ring) are skipped.
// Returns the number of rows pushed. Replica rows are read-only and as
// stale as the last sync; training pushes remain single-owner.
func (c *Client) SyncReplicas(keys []uint64) (int, error) {
	r := c.ring.Load()
	if r == nil {
		return 0, fmt.Errorf("cluster: sync replicas: modulo placement has no replicas")
	}
	nn := len(c.nodes)
	// Read each key's row from its owner via single-key bags.
	ownKeys := make([][]uint64, nn)
	for _, k := range keys {
		if r.Secondary(k) < 0 {
			continue
		}
		ownKeys[r.Owner(k)] = append(ownKeys[r.Owner(k)], k)
	}
	repKeys := make([][]uint64, nn)
	repRows := make([][]float32, nn)
	for n := 0; n < nn; n++ {
		if len(ownKeys[n]) == 0 {
			continue
		}
		offs := make([]uint32, len(ownKeys[n])+1)
		for i := range ownKeys[n] {
			offs[i+1] = uint32(i + 1)
		}
		rows, err := c.nodes[n].PullBags(false, offs, ownKeys[n])
		if err != nil {
			return 0, c.nodeErr(n, fmt.Errorf("sync replicas read: %w", err))
		}
		if len(rows) != len(ownKeys[n])*c.dim {
			return 0, c.nodeErr(n, fmt.Errorf("sync replicas read returned %d floats for %d keys", len(rows), len(ownKeys[n])))
		}
		for i, k := range ownKeys[n] {
			s := r.Secondary(k)
			repKeys[s] = append(repKeys[s], k)
			repRows[s] = append(repRows[s], rows[i*c.dim:(i+1)*c.dim]...)
		}
	}
	pushed := 0
	for s := 0; s < nn; s++ {
		if len(repKeys[s]) == 0 {
			continue
		}
		if err := c.nodes[s].Replicate(repKeys[s], repRows[s]); err != nil {
			return pushed, c.nodeErr(s, fmt.Errorf("sync replicas push: %w", err))
		}
		pushed += len(repKeys[s])
	}
	return pushed, nil
}
