// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark runs the corresponding experiment
// (internal/experiments) and reports its headline numbers as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Micro-benchmarks of the engine's hot
// paths (pull, push, flush, recovery) follow at the bottom.
package openembedding

import (
	"strconv"
	"strings"
	"testing"

	"openembedding/internal/experiments"
	"openembedding/internal/sim"
)

// runExperiment executes one registered experiment per benchmark iteration
// and prints its table once.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = e.Run(experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if tab != nil {
		b.Logf("\n%s", tab)
	}
	return tab
}

func metric(b *testing.B, tab *experiments.Table, row, col, name string) {
	b.Helper()
	cell := tab.Cell(row, col)
	cell = strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		b.ReportMetric(v, name)
	}
}

func BenchmarkTable1DeviceCharacteristics(b *testing.B) {
	tab := runExperiment(b, "table1")
	metric(b, tab, "PMem", "Read BW", "pmem_read_GBps")
	metric(b, tab, "PMem", "Read lat", "pmem_read_ns")
}

func BenchmarkTable2AccessSkew(b *testing.B) {
	tab := runExperiment(b, "table2")
	metric(b, tab, "top 0.05%", "Measured", "top0.05pct_share_%")
}

func BenchmarkFig2BurstPattern(b *testing.B) {
	runExperiment(b, "fig2")
}

func BenchmarkFig3MotivationPenalty(b *testing.B) {
	tab := runExperiment(b, "fig3")
	metric(b, tab, "ori-cache", "16 GPUs", "oricache_norm16")
	metric(b, tab, "pmem-hash", "16 GPUs", "pmemhash_norm16")
}

func BenchmarkTable5Cost(b *testing.B) {
	tab := runExperiment(b, "table5")
	metric(b, tab, "PMem-OE", "$/epoch", "pmemoe_usd_epoch")
	metric(b, tab, "DRAM-PS", "$/epoch", "dramps_usd_epoch")
}

func BenchmarkFig6EndToEnd(b *testing.B) {
	tab := runExperiment(b, "fig6")
	metric(b, tab, "pmem-oe", "4 GPUs", "pmemoe_norm4")
	metric(b, tab, "ori-cache", "16 GPUs", "oricache_norm16")
}

func BenchmarkFig7PipelinedCache(b *testing.B) {
	tab := runExperiment(b, "fig7")
	metric(b, tab, "pmem-oe", "16 GPUs", "pmemoe_norm16")
}

func BenchmarkFig8CacheSize(b *testing.B) {
	tab := runExperiment(b, "fig8")
	metric(b, tab, "2GB", "Normalized time", "norm_2GB")
}

func BenchmarkFig9Ablation(b *testing.B) {
	tab := runExperiment(b, "fig9")
	metric(b, tab, "cache + pipeline (PMem-OE)", "Normalized time", "both_enabled_norm")
}

func BenchmarkFig10SkewFit(b *testing.B) {
	tab := runExperiment(b, "fig10")
	metric(b, tab, "original (Table II fit)", "Fitted lambda", "lambda")
}

func BenchmarkFig11SkewSweep(b *testing.B) {
	tab := runExperiment(b, "fig11")
	metric(b, tab, "original", "Miss rate", "missrate_%")
}

func BenchmarkFig12CheckpointInterval(b *testing.B) {
	tab := runExperiment(b, "fig12")
	metric(b, tab, "20 min", "Proposed", "proposed_norm_20min")
	metric(b, tab, "20 min", "Incremental", "incremental_norm_20min")
}

func BenchmarkFig13CheckpointScaling(b *testing.B) {
	runExperiment(b, "fig13")
}

func BenchmarkFig14Recovery(b *testing.B) {
	tab := runExperiment(b, "fig14")
	metric(b, tab, "PMem-OE (scan + index rebuild)", "Total (s)", "pmemoe_recovery_s")
}

func BenchmarkFig15Criteo(b *testing.B) {
	tab := runExperiment(b, "fig15")
	metric(b, tab, "pmem-oe", "dim64/4GPU", "pmemoe_d64g4_norm")
	metric(b, tab, "tf", "dim64/4GPU", "tf_d64g4_norm")
}

// ---------------------------------------------------------------------------
// Engine micro-benchmarks (real wall time of the functional layer).
// ---------------------------------------------------------------------------

func benchServer(b *testing.B, cacheEntries int) *Server {
	b.Helper()
	s, err := Open(Config{Dim: 64, Capacity: 1 << 16, CacheEntries: cacheEntries})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func BenchmarkEnginePullHot(b *testing.B) {
	s := benchServer(b, 1024)
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i)
	}
	dst := make([]float32, len(keys)*64)
	if err := s.Pull(0, keys, dst); err != nil {
		b.Fatal(err)
	}
	s.EndPullPhase(0)
	if err := s.EndBatch(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := int64(i + 1)
		if err := s.Pull(batch, keys, dst); err != nil {
			b.Fatal(err)
		}
		s.EndPullPhase(batch)
		if err := s.EndBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(keys)*b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkEnginePullPushBatch(b *testing.B) {
	s := benchServer(b, 4096)
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(i * 17 % (1 << 15))
	}
	dst := make([]float32, len(keys)*64)
	grads := make([]float32, len(keys)*64)
	for i := range grads {
		grads[i] = 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := int64(i)
		if err := s.Pull(batch, keys, dst); err != nil {
			b.Fatal(err)
		}
		s.EndPullPhase(batch)
		if err := s.Push(batch, keys, grads); err != nil {
			b.Fatal(err)
		}
		if err := s.EndBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(keys)*b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkEngineColdMisses(b *testing.B) {
	// A cache far smaller than the working set: every batch churns PMem.
	s := benchServer(b, 64)
	dst := make([]float32, 256*64)
	grads := make([]float32, 256*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := make([]uint64, 256)
		for j := range keys {
			keys[j] = uint64((i*256 + j) % (1 << 15))
		}
		batch := int64(i)
		if err := s.Pull(batch, keys, dst); err != nil {
			b.Fatal(err)
		}
		s.EndPullPhase(batch)
		if err := s.Push(batch, keys, grads); err != nil {
			b.Fatal(err)
		}
		if err := s.EndBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointCycle(b *testing.B) {
	s := benchServer(b, 1024)
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i)
	}
	dst := make([]float32, len(keys)*64)
	grads := make([]float32, len(keys)*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := int64(i)
		if err := s.Pull(batch, keys, dst); err != nil {
			b.Fatal(err)
		}
		s.EndPullPhase(batch)
		if err := s.Push(batch, keys, grads); err != nil {
			b.Fatal(err)
		}
		if err := s.EndBatch(batch); err != nil {
			b.Fatal(err)
		}
		if err := s.RequestCheckpoint(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if done := s.CompletedCheckpoint(); done < int64(b.N-2) {
		b.Fatalf("checkpoints lagging: completed %d of %d", done, b.N)
	}
}

func BenchmarkRecoveryScaledStore(b *testing.B) {
	// Functional recovery of a 16k-entry store (the Fig. 14 mechanism at
	// bench scale: PMem scan + index rebuild).
	s, err := Open(Config{Dim: 64, Capacity: 1 << 14, CacheEntries: 512, Optimizer: "sgd", LearningRate: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const chunk = 2048
	dst := make([]float32, chunk*64)
	grads := make([]float32, chunk*64)
	batch := int64(0)
	for lo := 0; lo < 1<<14; lo += chunk {
		keys := make([]uint64, chunk)
		for j := range keys {
			keys[j] = uint64(lo + j)
		}
		if err := s.Pull(batch, keys, dst); err != nil {
			b.Fatal(err)
		}
		s.EndPullPhase(batch)
		if err := s.Push(batch, keys, grads); err != nil {
			b.Fatal(err)
		}
		if err := s.EndBatch(batch); err != nil {
			b.Fatal(err)
		}
		batch++
	}
	if err := s.RequestCheckpoint(batch - 1); err != nil {
		b.Fatal(err)
	}
	// Drive one more batch so the checkpoint completes.
	keys := []uint64{0}
	if err := s.Pull(batch, keys, dst[:64]); err != nil {
		b.Fatal(err)
	}
	s.EndPullPhase(batch)
	if err := s.EndBatch(batch); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SimulateCrash()
		ckpt, err := s.Recover()
		if err != nil {
			b.Fatal(err)
		}
		if ckpt < 0 {
			b.Fatal("recovered to no checkpoint")
		}
	}
	b.ReportMetric(float64(1<<14)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkSimEpoch measures the simulator itself (one quick epoch config).
func BenchmarkSimEpoch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Engine: "pmem-oe", GPUs: 8,
			Keys: 1 << 14, Draws: 256, WarmupBatches: 2, MeasureBatches: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Epoch.Hours(), "sim_epoch_h")
		}
	}
}
