package openembedding

import (
	"fmt"
	"sort"
)

// TableSpec names one embedding table in a group.
type TableSpec struct {
	// Name identifies the table (e.g. the sparse layer it backs).
	Name string
	// Config configures the table's shard; dimensions may differ per table.
	Config Config
}

// Tables is a group of independently-dimensioned embedding tables driven
// through one synchronous batch protocol — the shape of a real DLRM, where
// every sparse layer has its own table but all advance batch by batch
// together. Checkpoints are group-wide: a batch is durable only once every
// table has it.
type Tables struct {
	names  []string
	tables map[string]*Server
}

// OpenTables opens every table in the group. On error, tables opened so
// far are closed.
func OpenTables(specs ...TableSpec) (*Tables, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("openembedding: no table specs")
	}
	g := &Tables{tables: make(map[string]*Server, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" {
			g.Close()
			return nil, fmt.Errorf("openembedding: table with empty name")
		}
		if _, dup := g.tables[spec.Name]; dup {
			g.Close()
			return nil, fmt.Errorf("openembedding: duplicate table %q", spec.Name)
		}
		s, err := Open(spec.Config)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("openembedding: table %q: %w", spec.Name, err)
		}
		g.tables[spec.Name] = s
		g.names = append(g.names, spec.Name)
	}
	sort.Strings(g.names)
	return g, nil
}

// Table returns the named table's server, or nil when absent.
func (g *Tables) Table(name string) *Server { return g.tables[name] }

// Names lists the tables in sorted order.
func (g *Tables) Names() []string { return append([]string(nil), g.names...) }

// Pull fetches from the named table.
func (g *Tables) Pull(table string, batch int64, keys []uint64, dst []float32) error {
	s := g.tables[table]
	if s == nil {
		return fmt.Errorf("openembedding: unknown table %q", table)
	}
	return s.Pull(batch, keys, dst)
}

// Push applies gradients to the named table.
func (g *Tables) Push(table string, batch int64, keys []uint64, grads []float32) error {
	s := g.tables[table]
	if s == nil {
		return fmt.Errorf("openembedding: unknown table %q", table)
	}
	return s.Push(batch, keys, grads)
}

// TableBatch is one table's slice of a training step: the keys the batch
// looks up in that table, and the caller's row buffer — weights out on
// PullAll, gradients in on PushAll. len(Buf) must be len(Keys)×dim of the
// table.
type TableBatch struct {
	Table string
	Keys  []uint64
	Buf   []float32
}

// resolveAll maps each request to its server, failing before any table is
// touched when a name is unknown — a step either addresses only real tables
// or does nothing.
func (g *Tables) resolveAll(reqs []TableBatch, scratch []*Server) ([]*Server, error) {
	srvs := scratch[:0]
	for i := range reqs {
		s := g.tables[reqs[i].Table]
		if s == nil {
			return nil, fmt.Errorf("openembedding: unknown table %q", reqs[i].Table)
		}
		srvs = append(srvs, s)
	}
	return srvs, nil
}

// PullAll fetches one training step's rows across tables: each request's
// keys are gathered from its table into its buffer, all under one batch ID —
// the per-step shape of a DLRM, where every sparse feature hits its own
// table. Each table's pull runs the engine's run-sorted, duplicate-collapsed
// sweep, so repeated keys within a request cost one tier read.
func (g *Tables) PullAll(batch int64, reqs []TableBatch) error {
	var stack [8]*Server
	srvs, err := g.resolveAll(reqs, stack[:])
	if err != nil {
		return err
	}
	for i := range reqs {
		if err := srvs[i].Pull(batch, reqs[i].Keys, reqs[i].Buf); err != nil {
			return fmt.Errorf("openembedding: table %q: %w", reqs[i].Table, err)
		}
	}
	return nil
}

// PushAll applies one training step's gradients across tables, the push-side
// counterpart of PullAll.
func (g *Tables) PushAll(batch int64, reqs []TableBatch) error {
	var stack [8]*Server
	srvs, err := g.resolveAll(reqs, stack[:])
	if err != nil {
		return err
	}
	for i := range reqs {
		if err := srvs[i].Push(batch, reqs[i].Keys, reqs[i].Buf); err != nil {
			return fmt.Errorf("openembedding: table %q: %w", reqs[i].Table, err)
		}
	}
	return nil
}

// EndPullPhase signals pull completion to every table.
func (g *Tables) EndPullPhase(batch int64) {
	for _, name := range g.names {
		g.tables[name].EndPullPhase(batch)
	}
}

// EndBatch seals the batch on every table.
func (g *Tables) EndBatch(batch int64) error {
	for _, name := range g.names {
		if err := g.tables[name].EndBatch(batch); err != nil {
			return fmt.Errorf("openembedding: table %q: %w", name, err)
		}
	}
	return nil
}

// RequestCheckpoint enqueues a group-wide checkpoint of the most recently
// sealed batch.
func (g *Tables) RequestCheckpoint(batch int64) error {
	for _, name := range g.names {
		if err := g.tables[name].RequestCheckpoint(batch); err != nil {
			return fmt.Errorf("openembedding: table %q: %w", name, err)
		}
	}
	return nil
}

// CompletedCheckpoint reports the group's durable checkpoint: the minimum
// over tables (a checkpoint counts only when every table has it).
func (g *Tables) CompletedCheckpoint() int64 {
	min := int64(1<<62 - 1)
	for _, name := range g.names {
		if v := g.tables[name].CompletedCheckpoint(); v < min {
			min = v
		}
	}
	return min
}

// Stats sums counters across tables.
func (g *Tables) Stats() Stats {
	var total Stats
	for _, name := range g.names {
		st := g.tables[name].Stats()
		total.Entries += st.Entries
		total.CachedEntries += st.CachedEntries
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.PMemReads += st.PMemReads
		total.PMemWrites += st.PMemWrites
		total.Evictions += st.Evictions
		total.CheckpointsDone += st.CheckpointsDone
	}
	return total
}

// Close closes every table, returning the first error.
func (g *Tables) Close() error {
	var first error
	for _, s := range g.tables {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
