package openembedding

import (
	"path/filepath"
	"testing"
)

func openTestTables(t *testing.T) *Tables {
	t.Helper()
	g, err := OpenTables(
		TableSpec{Name: "user", Config: Config{Dim: 8, Capacity: 256, CacheEntries: 16}},
		TableSpec{Name: "item", Config: Config{Dim: 16, Capacity: 256, CacheEntries: 16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestTablesIndependentDims(t *testing.T) {
	g := openTestTables(t)
	if g.Table("user").Dim() != 8 || g.Table("item").Dim() != 16 {
		t.Fatal("per-table dims lost")
	}
	if g.Table("missing") != nil {
		t.Fatal("unknown table returned")
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "item" || names[1] != "user" {
		t.Fatalf("names = %v", names)
	}
}

func TestTablesBatchProtocol(t *testing.T) {
	g := openTestTables(t)
	userKeys := []uint64{1, 2}
	itemKeys := []uint64{10}
	uw := make([]float32, len(userKeys)*8)
	iw := make([]float32, len(itemKeys)*16)

	for batch := int64(0); batch < 3; batch++ {
		if err := g.Pull("user", batch, userKeys, uw); err != nil {
			t.Fatal(err)
		}
		if err := g.Pull("item", batch, itemKeys, iw); err != nil {
			t.Fatal(err)
		}
		g.EndPullPhase(batch)
		if err := g.Push("user", batch, userKeys, make([]float32, len(uw))); err != nil {
			t.Fatal(err)
		}
		if err := g.Push("item", batch, itemKeys, make([]float32, len(iw))); err != nil {
			t.Fatal(err)
		}
		if err := g.EndBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RequestCheckpoint(2); err != nil {
		t.Fatal(err)
	}
	// One more batch lets both tables complete.
	if err := g.Pull("user", 3, userKeys, uw); err != nil {
		t.Fatal(err)
	}
	if err := g.Pull("item", 3, itemKeys, iw); err != nil {
		t.Fatal(err)
	}
	g.EndPullPhase(3)
	if err := g.EndBatch(3); err != nil {
		t.Fatal(err)
	}
	if got := g.CompletedCheckpoint(); got != 2 {
		t.Fatalf("group checkpoint = %d, want 2", got)
	}
	st := g.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3 across tables", st.Entries)
	}
}

// TestTablesPullAllPushAll drives a training step through the batch surface
// and checks it is exactly per-table Pull/Push: same rows out, same weights
// after the update, and an unknown table fails the whole step before any
// table is touched.
func TestTablesPullAllPushAll(t *testing.T) {
	g := openTestTables(t)
	ref := openTestTables(t)
	userKeys := []uint64{1, 2, 1} // duplicate: collapsed by the run sweep
	itemKeys := []uint64{10, 11}
	step := []TableBatch{
		{Table: "user", Keys: userKeys, Buf: make([]float32, len(userKeys)*8)},
		{Table: "item", Keys: itemKeys, Buf: make([]float32, len(itemKeys)*16)},
	}
	uw := make([]float32, len(userKeys)*8)
	iw := make([]float32, len(itemKeys)*16)

	for batch := int64(0); batch < 3; batch++ {
		if err := g.PullAll(batch, step); err != nil {
			t.Fatal(err)
		}
		if err := ref.Pull("user", batch, userKeys, uw); err != nil {
			t.Fatal(err)
		}
		if err := ref.Pull("item", batch, itemKeys, iw); err != nil {
			t.Fatal(err)
		}
		for i, want := range uw {
			if step[0].Buf[i] != want {
				t.Fatalf("batch %d user row float %d: %v, want %v", batch, i, step[0].Buf[i], want)
			}
		}
		for i, want := range iw {
			if step[1].Buf[i] != want {
				t.Fatalf("batch %d item row float %d: %v, want %v", batch, i, step[1].Buf[i], want)
			}
		}
		g.EndPullPhase(batch)
		ref.EndPullPhase(batch)

		grads := []TableBatch{
			{Table: "user", Keys: userKeys, Buf: constSlice(len(userKeys)*8, 0.5)},
			{Table: "item", Keys: itemKeys, Buf: constSlice(len(itemKeys)*16, 0.5)},
		}
		if err := g.PushAll(batch, grads); err != nil {
			t.Fatal(err)
		}
		if err := ref.Push("user", batch, userKeys, grads[0].Buf); err != nil {
			t.Fatal(err)
		}
		if err := ref.Push("item", batch, itemKeys, grads[1].Buf); err != nil {
			t.Fatal(err)
		}
		if err := g.EndBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := ref.EndBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	// Unknown table: the step must fail atomically — the "user" request
	// listed before it must not have run.
	before := g.Stats()
	bad := []TableBatch{
		{Table: "user", Keys: userKeys, Buf: make([]float32, len(userKeys)*8)},
		{Table: "ghost", Keys: itemKeys, Buf: make([]float32, len(itemKeys)*16)},
	}
	if err := g.PullAll(3, bad); err == nil {
		t.Fatal("PullAll with unknown table succeeded")
	}
	if err := g.PushAll(3, bad); err == nil {
		t.Fatal("PushAll with unknown table succeeded")
	}
	if after := g.Stats(); after != before {
		t.Fatalf("failed step touched tables: stats %+v -> %+v", before, after)
	}
}

func constSlice(n int, v float32) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestTablesErrors(t *testing.T) {
	if _, err := OpenTables(); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := OpenTables(TableSpec{Name: "", Config: Config{}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := OpenTables(
		TableSpec{Name: "a", Config: Config{Dim: 4, Capacity: 8}},
		TableSpec{Name: "a", Config: Config{Dim: 4, Capacity: 8}},
	); err == nil {
		t.Fatal("duplicate name accepted")
	}
	g := openTestTables(t)
	if err := g.Pull("nope", 0, []uint64{1}, make([]float32, 8)); err == nil {
		t.Fatal("pull from unknown table accepted")
	}
	if err := g.Push("nope", 0, []uint64{1}, make([]float32, 8)); err == nil {
		t.Fatal("push to unknown table accepted")
	}
}

func TestTablesDurablePaths(t *testing.T) {
	dir := t.TempDir()
	specs := []TableSpec{
		{Name: "a", Config: Config{Dim: 4, Capacity: 64, CacheEntries: 8,
			Optimizer: "sgd", LearningRate: 0.1, PMemPath: filepath.Join(dir, "a.img")}},
		{Name: "b", Config: Config{Dim: 4, Capacity: 64, CacheEntries: 8,
			Optimizer: "sgd", LearningRate: 0.1, PMemPath: filepath.Join(dir, "b.img")}},
	}
	g, err := OpenTables(specs...)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{1}
	w := make([]float32, 4)
	grads := []float32{1, 1, 1, 1}
	for batch := int64(0); batch < 2; batch++ {
		for _, name := range []string{"a", "b"} {
			if err := g.Pull(name, batch, keys, w); err != nil {
				t.Fatal(err)
			}
		}
		g.EndPullPhase(batch)
		for _, name := range []string{"a", "b"} {
			if err := g.Push(name, batch, keys, grads); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.EndBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	// Let checkpoints complete, then persist.
	if err := g.Pull("a", 2, keys, w); err != nil {
		t.Fatal(err)
	}
	if err := g.Pull("b", 2, keys, w); err != nil {
		t.Fatal(err)
	}
	g.EndPullPhase(2)
	if err := g.EndBatch(2); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 4)
	copy(want, w)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTables(specs...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Table("a").RecoveredBatch != 1 || re.Table("b").RecoveredBatch != 1 {
		t.Fatalf("recovered batches %d/%d, want 1/1",
			re.Table("a").RecoveredBatch, re.Table("b").RecoveredBatch)
	}
}
