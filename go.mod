module openembedding

go 1.22
