// Command oesim regenerates the paper's tables and figures.
//
// Usage:
//
//	oesim -list
//	oesim -exp fig7 [-quick] [-seed 1]
//	oesim -all [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"openembedding/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table1, table2, fig2..fig15, table5)")
		all      = flag.Bool("all", false, "run every experiment in paper order")
		list     = flag.Bool("list", false, "list experiment ids")
		quick    = flag.Bool("quick", false, "smaller batch counts (smoke test)")
		seed     = flag.Int64("seed", 1, "workload seed")
		jsonFlag = flag.Bool("json", false, "emit results as indented JSON")
	)
	flag.Parse()
	asJSON = *jsonFlag

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			run(e, opts)
		}
	case *exp != "":
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "oesim: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e, opts)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

var asJSON bool

func run(e experiments.Experiment, opts experiments.Options) {
	t, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oesim: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t); err != nil {
			fmt.Fprintf(os.Stderr, "oesim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		return
	}
	t.Fprint(os.Stdout)
}
