package main

import (
	"os"
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/driver"
)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoIsCleanAndBaselinePinned is the regression gate for the oevet
// suite: the whole repository must analyze clean, and the number of
// //oevet:ignore suppressions must exactly match the reviewed census in
// .oevet-baseline. A new ignore (or a removed one) fails here until the
// baseline is regenerated with `go run ./cmd/oevet -write-baseline ./...`
// and the justification reviewed.
func TestRepoIsCleanAndBaselinePinned(t *testing.T) {
	root := moduleRoot(t)
	res, err := driver.RunStandalone(root, []string{"./..."})
	if err != nil {
		t.Fatalf("oevet: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
	if err := driver.CheckBaseline(filepath.Join(root, ".oevet-baseline"), res.IgnoresUsed); err != nil {
		t.Error(err)
	}
}
