// Command oevet runs the OpenEmbedding invariant analyzer suite: lockorder,
// pmemdurability, determinism, faultdet, atomicstat, chargeflow, allocfree,
// epochfence and errwrap (see internal/analysis and DESIGN.md §8, §13).
//
// Standalone (authoritative; cross-package facts flow in dependency order):
//
//	go run ./cmd/oevet -baseline .oevet-baseline ./...
//
// As a vet tool:
//
//	go build -o "$(go env GOPATH)/bin/oevet" ./cmd/oevet
//	go vet -vettool="$(command -v oevet)" ./...
package main

import (
	"os"

	"openembedding/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
