// Command oectl talks to running oeps nodes.
//
//	oectl -nodes 127.0.0.1:7070,127.0.0.1:7071 stats
//	oectl -nodes ... -obs http://127.0.0.1:7071 stats
//	oectl -nodes ... -dim 64 pull 12 34 56
//	oectl -nodes ... checkpoint 41
//	oectl -nodes ... completed
//	oectl -nodes ... -dim 64 drive 4 256
//	oectl -nodes ... scrub
//	oectl -nodes ... ping
//	oectl -nodes ... ring
//	oectl -nodes ... join 41 127.0.0.1:7073
//	oectl -nodes ... leave 41 2
//	oectl -nodes ... -dim 64 serve-bench -duration 10s -conns 8
//
// ping probes every node with the health RPC and prints its epoch,
// round-trip time and whether it serves bag reads. ring samples the
// consistent-hash placement and prints each node's key share at the
// current ownership epoch.
//
// join <batch> <addr> live-migrates the joining node's ring share to it
// (checkpoint copy, delta replay, verify, epoch flip) and prints the
// migration counters; batch is the last sealed batch, and the cluster
// must be quiesced (no concurrent training) for the duration. leave
// <batch> <node> is the inverse: it drains the leaving node's share to
// the survivors and retires it.
//
// drive [batches [keys]] runs the synchronous batch protocol
// (pull/end-pull/push/end-batch, tiny constant gradients) so a live
// cluster has real persisted state to inspect with stats, checkpoint and
// scrub — a smoke/load driver, not a trainer.
//
// serve-bench fires a flash-crowd embedding-bag workload at nodes started
// with `oeps -serve`: each request gathers -tables × -batch bags of -bag
// keys drawn from a rotating Zipf-like hot set (internal/workload
// FlashCrowd), and the tool prints achieved QPS and client-side p50/p99
// latency. With -obs it additionally scrapes the node's serve_* counters
// to show how many keys were served lock-free from the snapshot versus
// the locked fallback paths.
//
// With -obs pointing at a node's -debug-addr, stats additionally scrapes
// /metrics.json and pretty-prints the node's latency percentiles (pull,
// push, miss service, RPC RTT), byte counters and checkpoint stalls; scrub
// additionally prints that node's lifetime integrity counters (records
// scanned/healed by the background scrubber, corrupt serves, recovery
// fallbacks).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"openembedding/internal/cluster"
	"openembedding/internal/obs"
	"openembedding/internal/rpc"
	"openembedding/internal/workload"
)

func main() {
	var (
		nodes  = flag.String("nodes", "127.0.0.1:7070", "comma-separated node addresses")
		dim    = flag.Int("dim", 64, "embedding dimension (for pull)")
		obsURL = flag.String("obs", "", "observability base URL of one node (its oeps -debug-addr); stats scrapes <url>/metrics.json")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "oectl: need a command: ping|ring|join|leave|stats|pull|checkpoint|completed|drive|scrub|serve-bench")
		os.Exit(2)
	}
	addrs := strings.Split(*nodes, ",")

	switch args[0] {
	case "ping":
		// Short deadlines: a gray-failed node should print an UNREACHABLE
		// row in seconds, not hold the sweep for the default 30s timeout.
		pingOpts := rpc.Options{
			DialTimeout:  3 * time.Second,
			ReadTimeout:  3 * time.Second,
			WriteTimeout: 3 * time.Second,
		}
		var unreachable []string
		for i, a := range addrs {
			c, err := rpc.DialOpts(a, pingOpts)
			if err != nil {
				fmt.Printf("%-21s UNREACHABLE (dial: %v)\n", a, err)
				unreachable = append(unreachable, fmt.Sprintf("node %d (%s)", i, a))
				continue
			}
			h, err := c.PingInfo()
			c.Close()
			if err != nil {
				fmt.Printf("%-21s UNREACHABLE (ping: %v)\n", a, err)
				unreachable = append(unreachable, fmt.Sprintf("node %d (%s)", i, a))
				continue
			}
			serving := "training-only"
			if h.Serving {
				serving = "serving"
			}
			fmt.Printf("%-21s ok    epoch=%d rtt=%s %s\n", a, h.Epoch, h.RTT.Round(time.Microsecond), serving)
		}
		if len(unreachable) > 0 {
			fmt.Printf("%d/%d nodes unreachable: %s\n", len(unreachable), len(addrs), strings.Join(unreachable, ", "))
			os.Exit(1)
		}
		fmt.Printf("all %d node(s) reachable\n", len(addrs))
	case "ring":
		cl := dial(*dim, addrs)
		defer cl.Close()
		const sample = 100_000
		counts := make([]int, cl.Nodes())
		for k := uint64(0); k < sample; k++ {
			counts[cl.Owner(k)]++
		}
		fmt.Printf("placement epoch=%d nodes=%d (%d-key sample)\n", cl.Epoch(), cl.Nodes(), sample)
		for i, a := range addrs {
			fmt.Printf("node %d %-21s %5.1f%% of keys\n", i, a, 100*float64(counts[i])/sample)
		}
	case "join":
		if len(args) != 3 {
			log.Fatal("oectl: join needs <last-sealed-batch> <addr>")
		}
		batch, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			log.Fatalf("oectl: bad batch %q", args[1])
		}
		reg := obs.NewRegistry()
		cl, err := cluster.DialOpts(*dim, addrs, cluster.Options{Obs: reg})
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		defer cl.Close()
		start := time.Now()
		if err := cl.Join(batch, args[2]); err != nil {
			log.Fatalf("oectl: join: %v", err)
		}
		fmt.Printf("joined %s: cluster now %d node(s) at epoch %d\n", args[2], cl.Nodes(), cl.Epoch())
		printMigrationCounters(reg, time.Since(start))
	case "leave":
		if len(args) != 3 {
			log.Fatal("oectl: leave needs <last-sealed-batch> <node-index>")
		}
		batch, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			log.Fatalf("oectl: bad batch %q", args[1])
		}
		node, err := strconv.Atoi(args[2])
		if err != nil {
			log.Fatalf("oectl: bad node index %q", args[2])
		}
		reg := obs.NewRegistry()
		cl, err := cluster.DialOpts(*dim, addrs, cluster.Options{Obs: reg})
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		defer cl.Close()
		start := time.Now()
		if err := cl.Leave(batch, node); err != nil {
			log.Fatalf("oectl: leave: %v", err)
		}
		fmt.Printf("node %d left: cluster now %d node(s) at epoch %d\n", node, cl.Nodes(), cl.Epoch())
		printMigrationCounters(reg, time.Since(start))
	case "stats":
		cl := dial(*dim, addrs)
		defer cl.Close()
		st, err := cl.Stats()
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("entries=%d cached=%d hits=%d misses=%d (miss rate %.2f%%)\n",
			st.Entries, st.CachedEntries, st.Hits, st.Misses, st.MissRate()*100)
		fmt.Printf("pmem reads=%d writes=%d evictions=%d checkpoints=%d\n",
			st.PMemReads, st.PMemWrites, st.Evictions, st.CheckpointsDone)
		if *obsURL != "" {
			fmt.Println()
			if err := scrapeObs(*obsURL); err != nil {
				log.Fatalf("oectl: obs scrape: %v", err)
			}
		}
	case "pull":
		if len(args) < 2 {
			log.Fatal("oectl: pull needs keys")
		}
		keys := make([]uint64, 0, len(args)-1)
		for _, a := range args[1:] {
			k, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				log.Fatalf("oectl: bad key %q", a)
			}
			keys = append(keys, k)
		}
		cl := dial(*dim, addrs)
		defer cl.Close()
		dst := make([]float32, len(keys)**dim)
		if err := cl.Pull(0, keys, dst); err != nil {
			log.Fatalf("oectl: %v", err)
		}
		for i, k := range keys {
			fmt.Printf("%d: %v\n", k, dst[i**dim:(i+1)**dim])
		}
	case "checkpoint":
		if len(args) != 2 {
			log.Fatal("oectl: checkpoint needs a batch id")
		}
		batch, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			log.Fatalf("oectl: bad batch %q", args[1])
		}
		cl := dial(*dim, addrs)
		defer cl.Close()
		if err := cl.RequestCheckpoint(batch); err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("checkpoint %d requested\n", batch)
	case "completed":
		cl := dial(*dim, addrs)
		defer cl.Close()
		v, err := cl.CompletedCheckpoint()
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("completed checkpoint: %d\n", v)
	case "drive":
		batches, keyN := 3, 64
		var err error
		if len(args) > 1 {
			if batches, err = strconv.Atoi(args[1]); err != nil || batches < 1 {
				log.Fatalf("oectl: bad batch count %q", args[1])
			}
		}
		if len(args) > 2 {
			if keyN, err = strconv.Atoi(args[2]); err != nil || keyN < 1 {
				log.Fatalf("oectl: bad key count %q", args[2])
			}
		}
		cl := dial(*dim, addrs)
		defer cl.Close()
		keys := make([]uint64, keyN)
		for i := range keys {
			keys[i] = uint64(i + 1)
		}
		buf := make([]float32, keyN**dim)
		for b := int64(0); b < int64(batches); b++ {
			if err := cl.Pull(b, keys, buf); err != nil {
				log.Fatalf("oectl: drive batch %d pull: %v", b, err)
			}
			if err := cl.EndPullPhase(b); err != nil {
				log.Fatalf("oectl: drive batch %d: %v", b, err)
			}
			for i := range buf {
				buf[i] = 0.1
			}
			if err := cl.Push(b, keys, buf); err != nil {
				log.Fatalf("oectl: drive batch %d push: %v", b, err)
			}
			if err := cl.EndBatch(b); err != nil {
				log.Fatalf("oectl: drive batch %d: %v", b, err)
			}
		}
		fmt.Printf("drove %d batch(es) of %d key(s) across %d node(s)\n", batches, keyN, len(addrs))
	case "scrub":
		cl := dial(*dim, addrs)
		defer cl.Close()
		rep, err := cl.Scrub()
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("scrubbed %d node(s): scanned=%d corrupt=%d repaired=%d restored=%d fenced=%d quarantined=%d\n",
			len(addrs), rep.Scanned, rep.Corrupt, rep.Repaired, rep.Restored, rep.Fenced, rep.Quarantined)
		if rep.Restored+rep.Fenced > 0 {
			fmt.Println("state regressed on at least one node (restored/fenced entries): its epoch is fenced — workers must re-adopt the epoch and replay, as after a crash")
		} else if rep.Corrupt > 0 {
			fmt.Println("all corruption repaired in place; no state loss, epochs unchanged")
		} else {
			fmt.Println("all records verified clean")
		}
		if *obsURL != "" {
			fmt.Println()
			if err := scrapeIntegrity(*obsURL); err != nil {
				log.Fatalf("oectl: obs scrape: %v", err)
			}
		}
	case "serve-bench":
		serveBench(*dim, addrs, *obsURL, args[1:])
	default:
		log.Fatalf("oectl: unknown command %q", args[0])
	}
}

// serveBench drives the flash-crowd bag-gather workload and reports
// throughput and client-observed latency percentiles.
func serveBench(dim int, addrs []string, obsURL string, args []string) {
	fs := flag.NewFlagSet("serve-bench", flag.ExitOnError)
	var (
		dur      = fs.Duration("duration", 10*time.Second, "how long to drive load")
		conns    = fs.Int("conns", 4, "concurrent client connections")
		tables   = fs.Int("tables", 26, "sparse fields per request (embedding tables)")
		batch    = fs.Int("batch", 128, "samples per request")
		bagSize  = fs.Int("bag", 1, "keys per bag")
		keyspace = fs.Int("keys", 1<<20, "key-space size")
		hot      = fs.Int("hot", 4096, "flash-crowd hot-set size")
		hotShare = fs.Float64("hot-share", 0.9, "fraction of draws hitting the hot set")
		rotate   = fs.Duration("rotate", 5*time.Second, "hot-set rotation period")
		seed     = fs.Uint64("seed", 42, "workload seed")
		mean     = fs.Bool("mean", false, "mean-pool bags instead of sum")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	bags := *tables * *batch
	keysPer := bags * *bagSize

	type workerOut struct {
		reqs int
		lats []time.Duration
		err  error
	}
	outs := make([]workerOut, *conns)
	var wg sync.WaitGroup
	deadline := time.Now().Add(*dur)
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := cluster.Dial(dim, addrs)
			if err != nil {
				outs[w].err = err
				return
			}
			defer cl.Close()
			// Per-worker seed: the crowd itself is shared (same seed,
			// window), but draw sequences must differ or every worker
			// requests identical bags.
			fc := workload.NewFlashCrowd(*keyspace, *hot, *hotShare, *rotate, *seed+uint64(w)<<32)
			offsets := make([]uint32, bags+1)
			for b := range offsets {
				offsets[b] = uint32(b * *bagSize)
			}
			keys := make([]uint64, keysPer)
			out := make([]float32, bags*dim)
			start := time.Now()
			for {
				now := time.Since(start)
				if time.Now().After(deadline) {
					return
				}
				fc.Advance(now)
				for i := range keys {
					keys[i] = fc.Sample()
				}
				t0 := time.Now()
				if err := cl.PullBags(*mean, offsets, keys, out); err != nil {
					outs[w].err = err
					return
				}
				outs[w].reqs++
				outs[w].lats = append(outs[w].lats, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()

	var reqs int
	var lats []time.Duration
	for _, o := range outs {
		if o.err != nil {
			log.Fatalf("oectl: serve-bench: %v", o.err)
		}
		reqs += o.reqs
		lats = append(lats, o.lats...)
	}
	if reqs == 0 {
		log.Fatal("oectl: serve-bench: no requests completed")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	qps := float64(reqs) / dur.Seconds()
	fmt.Printf("serve-bench: %d conn(s) × %s against %d node(s): %d tables × %d samples × %d key(s)/bag (%d keys/req)\n",
		*conns, dur, len(addrs), *tables, *batch, *bagSize, keysPer)
	fmt.Printf("requests=%d QPS=%.0f bags/s=%.0f keys/s=%.0f\n",
		reqs, qps, qps*float64(bags), qps*float64(keysPer))
	fmt.Printf("request latency p50=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	if obsURL != "" {
		fmt.Println()
		if err := scrapeServe(obsURL); err != nil {
			log.Fatalf("oectl: obs scrape: %v", err)
		}
	}
}

// printMigrationCounters prints the cluster_* migration counters a join or
// leave recorded in this process's registry (the coordinator is the
// counting side; a trainer's -obs endpoint exposes the same names).
func printMigrationCounters(reg *obs.Registry, wall time.Duration) {
	for _, name := range []string{"cluster_migrations", "cluster_migrated_keys"} {
		fmt.Printf("%-26s %d\n", name, reg.Counter(name).Value())
	}
	fmt.Printf("%-26s %s\n", "wall time", wall.Round(time.Millisecond))
}

// scrapeServe fetches <base>/metrics.json and prints the node's serving
// counters, including the lock-free snapshot hit rate.
func scrapeServe(base string) error {
	snap, err := fetchSnapshot(base)
	if err != nil {
		return err
	}
	fmt.Printf("node serving counters (%s):\n", base)
	for _, name := range []string{
		"serve_requests", "serve_keys", "serve_snap_hits",
		"serve_dram_fallback", "serve_pmem_fallback", "serve_init_served",
		"serve_refreshes",
	} {
		fmt.Printf("%-26s %d\n", name, snap.Counters[name])
	}
	if keys := snap.Counters["serve_keys"]; keys > 0 {
		fmt.Printf("%-26s %.2f%%\n", "snapshot hit rate", 100*float64(snap.Counters["serve_snap_hits"])/float64(keys))
	}
	return nil
}

// scrapeObs fetches <base>/metrics.json and pretty-prints it.
func scrapeObs(base string) error {
	snap, err := fetchSnapshot(base)
	if err != nil {
		return err
	}
	fmt.Printf("node observability (%s):\n", base)
	return snap.WriteSummary(os.Stdout)
}

// scrapeIntegrity fetches <base>/metrics.json and prints only the node's
// lifetime data-integrity counters (the scrub section of oectl scrub -obs).
func scrapeIntegrity(base string) error {
	snap, err := fetchSnapshot(base)
	if err != nil {
		return err
	}
	fmt.Printf("node integrity counters (%s):\n", base)
	for _, name := range []string{
		"engine_scrub_scanned", "engine_scrub_corrupt", "engine_scrub_repaired",
		"engine_scrub_restored", "engine_scrub_fenced",
		"engine_corrupt_serve", "engine_recover_fallback",
	} {
		fmt.Printf("%-26s %d\n", name, snap.Counters[name])
	}
	fmt.Printf("%-26s %d\n", "engine_scrub_progress", snap.Gauges["engine_scrub_progress"])
	return nil
}

func fetchSnapshot(base string) (obs.Snapshot, error) {
	url := strings.TrimSuffix(base, "/") + "/metrics.json"
	resp, err := http.Get(url)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("decode %s: %w", url, err)
	}
	return snap, nil
}

func dial(dim int, addrs []string) *cluster.Client {
	cl, err := cluster.Dial(dim, addrs)
	if err != nil {
		log.Fatalf("oectl: %v", err)
	}
	return cl
}
