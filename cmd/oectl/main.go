// Command oectl talks to running oeps nodes.
//
//	oectl -nodes 127.0.0.1:7070,127.0.0.1:7071 stats
//	oectl -nodes ... -obs http://127.0.0.1:7071 stats
//	oectl -nodes ... -dim 64 pull 12 34 56
//	oectl -nodes ... checkpoint 41
//	oectl -nodes ... completed
//	oectl -nodes ... ping
//
// With -obs pointing at a node's -debug-addr, stats additionally scrapes
// /metrics.json and pretty-prints the node's latency percentiles (pull,
// push, miss service, RPC RTT), byte counters and checkpoint stalls.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"openembedding/internal/cluster"
	"openembedding/internal/obs"
	"openembedding/internal/rpc"
)

func main() {
	var (
		nodes  = flag.String("nodes", "127.0.0.1:7070", "comma-separated node addresses")
		dim    = flag.Int("dim", 64, "embedding dimension (for pull)")
		obsURL = flag.String("obs", "", "observability base URL of one node (its oeps -debug-addr); stats scrapes <url>/metrics.json")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "oectl: need a command: ping|stats|pull|checkpoint|completed")
		os.Exit(2)
	}
	addrs := strings.Split(*nodes, ",")

	switch args[0] {
	case "ping":
		for _, a := range addrs {
			c, err := rpc.Dial(a)
			if err != nil {
				log.Fatalf("oectl: %v", err)
			}
			if err := c.Ping(); err != nil {
				log.Fatalf("oectl: ping %s: %v", a, err)
			}
			c.Close()
			fmt.Printf("%s: ok\n", a)
		}
	case "stats":
		cl := dial(*dim, addrs)
		defer cl.Close()
		st, err := cl.Stats()
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("entries=%d cached=%d hits=%d misses=%d (miss rate %.2f%%)\n",
			st.Entries, st.CachedEntries, st.Hits, st.Misses, st.MissRate()*100)
		fmt.Printf("pmem reads=%d writes=%d evictions=%d checkpoints=%d\n",
			st.PMemReads, st.PMemWrites, st.Evictions, st.CheckpointsDone)
		if *obsURL != "" {
			fmt.Println()
			if err := scrapeObs(*obsURL); err != nil {
				log.Fatalf("oectl: obs scrape: %v", err)
			}
		}
	case "pull":
		if len(args) < 2 {
			log.Fatal("oectl: pull needs keys")
		}
		keys := make([]uint64, 0, len(args)-1)
		for _, a := range args[1:] {
			k, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				log.Fatalf("oectl: bad key %q", a)
			}
			keys = append(keys, k)
		}
		cl := dial(*dim, addrs)
		defer cl.Close()
		dst := make([]float32, len(keys)**dim)
		if err := cl.Pull(0, keys, dst); err != nil {
			log.Fatalf("oectl: %v", err)
		}
		for i, k := range keys {
			fmt.Printf("%d: %v\n", k, dst[i**dim:(i+1)**dim])
		}
	case "checkpoint":
		if len(args) != 2 {
			log.Fatal("oectl: checkpoint needs a batch id")
		}
		batch, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			log.Fatalf("oectl: bad batch %q", args[1])
		}
		cl := dial(*dim, addrs)
		defer cl.Close()
		if err := cl.RequestCheckpoint(batch); err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("checkpoint %d requested\n", batch)
	case "completed":
		cl := dial(*dim, addrs)
		defer cl.Close()
		v, err := cl.CompletedCheckpoint()
		if err != nil {
			log.Fatalf("oectl: %v", err)
		}
		fmt.Printf("completed checkpoint: %d\n", v)
	default:
		log.Fatalf("oectl: unknown command %q", args[0])
	}
}

// scrapeObs fetches <base>/metrics.json and pretty-prints it.
func scrapeObs(base string) error {
	url := strings.TrimSuffix(base, "/") + "/metrics.json"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decode %s: %w", url, err)
	}
	fmt.Printf("node observability (%s):\n", base)
	return snap.WriteSummary(os.Stdout)
}

func dial(dim int, addrs []string) *cluster.Client {
	cl, err := cluster.Dial(dim, addrs)
	if err != nil {
		log.Fatalf("oectl: %v", err)
	}
	return cl
}
