// Command oeps runs one OpenEmbedding parameter-server node: a storage
// engine (PMem-OE by default, or any baseline) served over TCP.
//
//	oeps -addr :7070 -engine pmem-oe -dim 64 -capacity 1048576 \
//	     -cache 131072 -pmem-image /var/lib/oeps/shard0.img \
//	     -debug-addr :7071
//
// With -serve (pmem-oe only), the node also answers online-inference
// bag-gather requests (MsgPullBag) over the engine's lock-free snapshot
// path, refreshing the hot set every -serve-refresh; drive load at it with
// `oectl serve-bench`. With -pmem-image, the node recovers from an
// existing image on start and saves the durable image on shutdown
// (SIGINT/SIGTERM). With -debug-addr,
// the node serves its observability endpoints over HTTP: /metrics
// (Prometheus-style text), /metrics.json, and /debug/obs (Chrome
// trace_event JSON — load it in chrome://tracing or ui.perfetto.dev).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		debugAddr = flag.String("debug-addr", "", "observability HTTP address (/metrics, /metrics.json, /debug/obs); empty disables")
		engine    = flag.String("engine", "pmem-oe", "storage engine: pmem-oe|dram-ps|ori-cache|pmem-hash")
		dim       = flag.Int("dim", 64, "embedding dimension")
		capacity  = flag.Int("capacity", 1<<20, "max distinct embedding entries")
		cache     = flag.Int("cache", 0, "DRAM cache entries (default capacity/8)")
		optName   = flag.String("optimizer", "adagrad", "server-side optimizer: adagrad|sgd")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		shards    = flag.Int("shards", 0, "engine key-space shards, rounded to a power of two (default GOMAXPROCS)")
		image     = flag.String("pmem-image", "", "PMem image file (recover on start, save on stop)")
		ckptDir   = flag.String("checkpoint-dir", "", "incremental-checkpoint directory (baseline engines)")
		traceCap  = flag.Int("trace-spans", obs.DefaultTraceCapacity, "span ring capacity for /debug/obs (with -debug-addr)")
		serveBags = flag.Bool("serve", false, "enable the online inference tier: answer pull-bag gathers over the lock-free snapshot path (pmem-oe only)")
		serveRef  = flag.Duration("serve-refresh", 250*time.Millisecond, "hot-set snapshot refresh interval with -serve; 0 disables the background refresher")
	)
	flag.Parse()
	if *serveBags && *engine != "pmem-oe" {
		log.Fatalf("oeps: -serve requires -engine pmem-oe (got %q)", *engine)
	}

	opt, err := optim.ByName(*optName, float32(*lr))
	if err != nil {
		log.Fatalf("oeps: %v", err)
	}
	var reg *obs.Registry
	var spans *obs.Tracer
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		spans = obs.NewTracer(*traceCap)
	}
	node, err := ps.StartNode(*addr, ps.NodeConfig{
		Engine: *engine,
		Store: psengine.Config{
			Dim:          *dim,
			Capacity:     *capacity,
			CacheEntries: *cache,
			Optimizer:    opt,
			Shards:       *shards,
		},
		PMemImage:     *image,
		CheckpointDir: *ckptDir,
		Obs:           reg,
		Spans:         spans,
		Serve:         *serveBags,
	})
	if err != nil {
		log.Fatalf("oeps: %v", err)
	}
	fmt.Printf("oeps: %s engine serving on %s", *engine, node.Addr())
	if node.RecoveredBatch >= 0 {
		fmt.Printf(" (recovered to checkpoint %d)", node.RecoveredBatch)
	}
	fmt.Println()

	// The refresher re-fetches the handler each tick so it follows the
	// node across rollback-driven engine swaps instead of pinning the
	// handler of a retired engine.
	var stopRefresh chan struct{}
	if *serveBags && *serveRef > 0 {
		stopRefresh = make(chan struct{})
		go func() {
			t := time.NewTicker(*serveRef)
			defer t.Stop()
			for {
				select {
				case <-stopRefresh:
					return
				case <-t.C:
					if h := node.ServeHandler(); h != nil {
						h.Refresh() //nolint:errcheck // best-effort; the next tick retries
					}
				}
			}
		}()
		fmt.Printf("oeps: bag serving enabled (refresh every %s)\n", *serveRef)
	} else if *serveBags {
		fmt.Println("oeps: bag serving enabled (background refresh disabled)")
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: node.ObsHandler()}
		go func() {
			fmt.Printf("oeps: observability on http://%s/metrics\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("oeps: debug server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("oeps: shutting down")
	if stopRefresh != nil {
		close(stopRefresh)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := node.Close(); err != nil {
		log.Fatalf("oeps: shutdown: %v", err)
	}
}
