// Command oeps runs one OpenEmbedding parameter-server node: a storage
// engine (PMem-OE by default, or any baseline) served over TCP.
//
//	oeps -addr :7070 -engine pmem-oe -dim 64 -capacity 1048576 \
//	     -cache 131072 -pmem-image /var/lib/oeps/shard0.img \
//	     -debug-addr :7071
//
// With -pmem-image, the node recovers from an existing image on start and
// saves the durable image on shutdown (SIGINT/SIGTERM). With -debug-addr,
// the node serves its observability endpoints over HTTP: /metrics
// (Prometheus-style text), /metrics.json, and /debug/obs (Chrome
// trace_event JSON — load it in chrome://tracing or ui.perfetto.dev).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		debugAddr = flag.String("debug-addr", "", "observability HTTP address (/metrics, /metrics.json, /debug/obs); empty disables")
		engine    = flag.String("engine", "pmem-oe", "storage engine: pmem-oe|dram-ps|ori-cache|pmem-hash")
		dim       = flag.Int("dim", 64, "embedding dimension")
		capacity  = flag.Int("capacity", 1<<20, "max distinct embedding entries")
		cache     = flag.Int("cache", 0, "DRAM cache entries (default capacity/8)")
		optName   = flag.String("optimizer", "adagrad", "server-side optimizer: adagrad|sgd")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		shards    = flag.Int("shards", 0, "engine key-space shards, rounded to a power of two (default GOMAXPROCS)")
		image     = flag.String("pmem-image", "", "PMem image file (recover on start, save on stop)")
		ckptDir   = flag.String("checkpoint-dir", "", "incremental-checkpoint directory (baseline engines)")
		traceCap  = flag.Int("trace-spans", obs.DefaultTraceCapacity, "span ring capacity for /debug/obs (with -debug-addr)")
	)
	flag.Parse()

	opt, err := optim.ByName(*optName, float32(*lr))
	if err != nil {
		log.Fatalf("oeps: %v", err)
	}
	var reg *obs.Registry
	var spans *obs.Tracer
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		spans = obs.NewTracer(*traceCap)
	}
	node, err := ps.StartNode(*addr, ps.NodeConfig{
		Engine: *engine,
		Store: psengine.Config{
			Dim:          *dim,
			Capacity:     *capacity,
			CacheEntries: *cache,
			Optimizer:    opt,
			Shards:       *shards,
		},
		PMemImage:     *image,
		CheckpointDir: *ckptDir,
		Obs:           reg,
		Spans:         spans,
	})
	if err != nil {
		log.Fatalf("oeps: %v", err)
	}
	fmt.Printf("oeps: %s engine serving on %s", *engine, node.Addr())
	if node.RecoveredBatch >= 0 {
		fmt.Printf(" (recovered to checkpoint %d)", node.RecoveredBatch)
	}
	fmt.Println()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: node.ObsHandler()}
		go func() {
			fmt.Printf("oeps: observability on http://%s/metrics\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("oeps: debug server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("oeps: shutting down")
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := node.Close(); err != nil {
		log.Fatalf("oeps: shutdown: %v", err)
	}
}
