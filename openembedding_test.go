package openembedding

import (
	"path/filepath"
	"testing"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func driveBatch(t *testing.T, s *Server, batch int64, keys []uint64, grads []float32) []float32 {
	t.Helper()
	dst := make([]float32, len(keys)*s.Dim())
	if err := s.Pull(batch, keys, dst); err != nil {
		t.Fatal(err)
	}
	s.EndPullPhase(batch)
	if grads != nil {
		if err := s.Push(batch, keys, grads); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EndBatch(batch); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestOpenDefaults(t *testing.T) {
	s := testServer(t, Config{Dim: 8, Capacity: 1024})
	if s.Dim() != 8 || s.RecoveredBatch != -1 {
		t.Fatalf("dim=%d recovered=%d", s.Dim(), s.RecoveredBatch)
	}
	keys := []uint64{1, 2, 3}
	grads := make([]float32, len(keys)*8)
	for i := range grads {
		grads[i] = 1
	}
	before := driveBatch(t, s, 0, keys, grads)
	after := driveBatch(t, s, 1, keys, nil)
	for i := range after {
		if after[i] == before[i] {
			t.Fatal("push had no effect")
		}
	}
	if st := s.Stats(); st.Entries != 3 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

func TestOpenRejectsBadOptimizer(t *testing.T) {
	if _, err := Open(Config{Optimizer: "adamw"}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

func TestCrashRecoverInPlace(t *testing.T) {
	s := testServer(t, Config{Dim: 4, Capacity: 512, CacheEntries: 8, Optimizer: "sgd", LearningRate: 0.1})
	keys := []uint64{10, 20}
	grads := make([]float32, len(keys)*4)
	for i := range grads {
		grads[i] = 1
	}
	driveBatch(t, s, 0, keys, grads)
	driveBatch(t, s, 1, keys, grads)
	if err := s.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	atCkpt := driveBatch(t, s, 2, keys, grads) // pulls show post-batch-1 state
	driveBatch(t, s, 3, keys, grads)
	if s.CompletedCheckpoint() != 1 {
		t.Fatalf("checkpoint not completed: %d", s.CompletedCheckpoint())
	}

	s.SimulateCrash()
	ckpt, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt != 1 {
		t.Fatalf("recovered to %d, want 1", ckpt)
	}
	got := driveBatch(t, s, 2, keys, nil)
	for i := range got {
		if got[i] != atCkpt[i] {
			t.Fatalf("recovered[%d] = %v, want checkpoint state %v", i, got[i], atCkpt[i])
		}
	}
}

func TestDurableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pmem.img")
	cfg := Config{Dim: 4, Capacity: 256, CacheEntries: 16, PMemPath: path, Optimizer: "sgd", LearningRate: 0.1}

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5}
	grads := []float32{1, 1, 1, 1}
	driveBatch(t, s, 0, keys, grads)
	want := driveBatch(t, s, 1, keys, nil)
	if err := s.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	driveBatch(t, s, 2, keys, nil) // lets the checkpoint complete
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg) // same path: recovery
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.RecoveredBatch != 1 {
		t.Fatalf("reopened at checkpoint %d, want 1", re.RecoveredBatch)
	}
	got := driveBatch(t, re, 2, keys, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reopened[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestServeAndDial(t *testing.T) {
	s1 := testServer(t, Config{Dim: 4, Capacity: 512})
	s2 := testServer(t, Config{Dim: 4, Capacity: 512})
	n1, err := s1.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := s2.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	cl, err := Dial(4, n1.Addr(), n2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	dst := make([]float32, len(keys)*4)
	if err := cl.Pull(0, keys, dst); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Push(0, keys, make([]float32, len(keys)*4)); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != int64(len(keys)) {
		t.Fatalf("cluster entries = %d", st.Entries)
	}
	// Both shards got some keys.
	if s1.Stats().Entries == 0 || s2.Stats().Entries == 0 {
		t.Fatalf("partitioning sent everything to one shard: %d/%d",
			s1.Stats().Entries, s2.Stats().Entries)
	}
}

func TestSaveWithoutPath(t *testing.T) {
	s := testServer(t, Config{Dim: 2, Capacity: 16})
	if err := s.Save(); err == nil {
		t.Fatal("Save without PMemPath accepted")
	}
}
