package openembedding_test

import (
	"fmt"
	"log"

	"openembedding"
)

// Example shows the synchronous batch protocol against an embedded shard:
// pull, overlap maintenance with compute, push, seal, checkpoint.
func Example() {
	ps, err := openembedding.Open(openembedding.Config{
		Dim: 4, Capacity: 1024, CacheEntries: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()

	keys := []uint64{7, 8}
	weights := make([]float32, len(keys)*ps.Dim())
	grads := make([]float32, len(keys)*ps.Dim())

	for batch := int64(0); batch < 3; batch++ {
		if err := ps.Pull(batch, keys, weights); err != nil {
			log.Fatal(err)
		}
		ps.EndPullPhase(batch) // cache maintenance hides behind compute
		for i := range grads {
			grads[i] = 0.1
		}
		if err := ps.Push(batch, keys, grads); err != nil {
			log.Fatal(err)
		}
		if err := ps.EndBatch(batch); err != nil {
			log.Fatal(err)
		}
	}
	if err := ps.RequestCheckpoint(2); err != nil {
		log.Fatal(err)
	}

	st := ps.Stats()
	fmt.Printf("entries=%d hits=%d\n", st.Entries, st.Hits)
	// Output: entries=2 hits=6
}

// ExampleDial runs two shards over TCP and drives them through the
// hash-partitioned client.
func ExampleDial() {
	var addrs []string
	for i := 0; i < 2; i++ {
		shard, err := openembedding.Open(openembedding.Config{Dim: 4, Capacity: 256})
		if err != nil {
			log.Fatal(err)
		}
		defer shard.Close()
		node, err := shard.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, node.Addr())
	}

	cl, err := openembedding.Dial(4, addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	keys := []uint64{1, 2, 3, 4}
	weights := make([]float32, len(keys)*4)
	if err := cl.Pull(0, keys, weights); err != nil {
		log.Fatal(err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		log.Fatal(err)
	}
	if err := cl.EndBatch(0); err != nil {
		log.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster entries:", st.Entries)
	// Output: cluster entries: 4
}

// ExampleOpenTables drives two independently-dimensioned tables (one per
// sparse layer) through a group-wide checkpoint.
func ExampleOpenTables() {
	g, err := openembedding.OpenTables(
		openembedding.TableSpec{Name: "user", Config: openembedding.Config{Dim: 4, Capacity: 128}},
		openembedding.TableSpec{Name: "item", Config: openembedding.Config{Dim: 8, Capacity: 128}},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	uw := make([]float32, 4)
	iw := make([]float32, 8)
	for batch := int64(0); batch < 2; batch++ {
		if err := g.Pull("user", batch, []uint64{1}, uw); err != nil {
			log.Fatal(err)
		}
		if err := g.Pull("item", batch, []uint64{9}, iw); err != nil {
			log.Fatal(err)
		}
		g.EndPullPhase(batch)
		if err := g.EndBatch(batch); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.RequestCheckpoint(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables:", g.Names())
	// Output: tables: [item user]
}
