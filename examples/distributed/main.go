// distributed runs a 3-node OpenEmbedding cluster over TCP in one process:
// embedding entries are hash-partitioned across the nodes (Sec. IV), and a
// synchronous training loop drives pulls, pushes and a cluster-wide
// checkpoint through the partitioned client.
//
// In production each node would be its own oeps process (see cmd/oeps);
// here they share a process for a self-contained demo — the bytes still
// cross real TCP sockets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"openembedding"
)

const dim = 8

func main() {
	// Start three shards.
	var addrs []string
	for i := 0; i < 3; i++ {
		shard, err := openembedding.Open(openembedding.Config{
			Dim: dim, Capacity: 10_000, CacheEntries: 512,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer shard.Close()
		node, err := shard.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, node.Addr())
		fmt.Printf("shard %d serving on %s\n", i, node.Addr())
	}

	cl, err := openembedding.Dial(dim, addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(2))
	var batch int64
	for ; batch < 20; batch++ {
		// A skewed key mix: hot keys 0-9 plus a random tail.
		seen := map[uint64]bool{}
		var keys []uint64
		for _, k := range []uint64{0, 1, 2, uint64(rng.Intn(5000)), uint64(rng.Intn(5000)), uint64(rng.Intn(5000))} {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		weights := make([]float32, len(keys)*dim)
		grads := make([]float32, len(keys)*dim)

		must(cl.Pull(batch, keys, weights)) // fans out to the owning nodes
		must(cl.EndPullPhase(batch))
		for i := range grads {
			grads[i] = float32(rng.NormFloat64()) * 0.1
		}
		must(cl.Push(batch, keys, grads))
		must(cl.EndBatch(batch))
	}

	// Cluster-wide checkpoint: each shard checkpoints independently; the
	// cluster's durable progress is the minimum across shards.
	must(cl.RequestCheckpoint(batch - 1))
	// Run one more batch so every shard's maintenance can complete it.
	keys := []uint64{0, 1, 2}
	weights := make([]float32, len(keys)*dim)
	must(cl.Pull(batch, keys, weights))
	must(cl.EndPullPhase(batch))
	must(cl.Push(batch, keys, make([]float32, len(keys)*dim)))
	must(cl.EndBatch(batch))

	done, err := cl.CompletedCheckpoint()
	must(err)
	st, err := cl.Stats()
	must(err)
	fmt.Printf("\ncluster: %d entries across %d shards, %d hits / %d misses\n",
		st.Entries, len(addrs), st.Hits, st.Misses)
	fmt.Printf("cluster-wide completed checkpoint: batch %d\n", done)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
