// skew_analysis reproduces the paper's workload analysis (Sec. III): it
// generates a trace with the production access skew, reports the Table II
// concentration statistics, fits the Fig. 10 exponential decay, and shows
// what the skew means for cache sizing (the Fig. 8 intuition).
package main

import (
	"fmt"

	"openembedding/internal/workload"
)

func main() {
	const keys = 200_000
	const draws = 500_000

	fmt.Println("generating a production-skew trace:", draws, "accesses over", keys, "entries")
	s := workload.NewTableIISkew(keys, 42)
	counts := workload.CountAccesses(s, draws)

	fmt.Println("\n-- Table II: access concentration --")
	fracs := []float64{0.0005, 0.001, 0.01, 0.05}
	shares := workload.TopShare(counts, keys, fracs)
	for i, f := range fracs {
		fmt.Printf("top %5.2f%% of entries -> %5.1f%% of accesses\n", f*100, shares[i]*100)
	}
	fmt.Printf("distinct entries touched: %d of %d\n", len(counts), keys)

	fmt.Println("\n-- Fig. 10: exponential-decay fit --")
	for _, v := range []struct {
		label string
		s     workload.KeySampler
	}{
		{"more skew ", workload.NewTableIISkewAdjusted(keys, 1.1, 42)},
		{"original  ", s},
		{"less skew ", workload.NewTableIISkewAdjusted(keys, 0.9, 42)},
	} {
		c := workload.CountAccesses(v.s, draws)
		lambda := workload.FitExponential(c, keys)
		top1 := workload.TopShare(c, keys, []float64{0.01})[0]
		fmt.Printf("%s freq(rank) ~ exp(-%.0f * rank/N)   top-1%% share %.1f%%\n",
			v.label, lambda, top1*100)
	}

	fmt.Println("\n-- cache sizing implication (Fig. 8 intuition) --")
	for _, frac := range []float64{0.0005, 0.004, 0.01, 0.05} {
		n := int(frac * keys)
		share := workload.TopShare(counts, keys, []float64{frac})[0]
		fmt.Printf("cache holding the hottest %6d entries (%.2f%% of table) serves ~%.1f%% of accesses\n",
			n, frac*100, share*100)
	}
	fmt.Println("\npast a few GB the curve flattens: the remaining accesses are one-touch")
	fmt.Println("tail entries that no cache policy can keep (compulsory misses).")
}
