// fault_tolerance demonstrates the batch-aware checkpoint end to end: train
// for a while, let a checkpoint complete as a side effect of cache
// maintenance, lose power mid-epoch, recover from PMem, verify the model
// state is exactly the checkpointed batch, and resume training.
//
// The PMem image lives in a temp file, so the "power failure" also kills
// the process state: recovery reads only what was durably flushed.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"openembedding"
)

const (
	dim      = 8
	capacity = 4096
	cacheSz  = 64 // small cache: heavy PMem traffic, the interesting case
)

func main() {
	dir, err := os.MkdirTemp("", "oe-fault")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	image := filepath.Join(dir, "shard.img")

	cfg := openembedding.Config{
		Dim: dim, Capacity: capacity, CacheEntries: cacheSz,
		Optimizer: "sgd", LearningRate: 0.1, PMemPath: image,
	}
	ps, err := openembedding.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	oracle := map[int64]map[uint64][]float32{} // batch -> key -> weights

	trainBatch := func(batch int64) {
		keys := []uint64{1, 2, uint64(3 + rng.Intn(200))}
		weights := make([]float32, len(keys)*dim)
		grads := make([]float32, len(keys)*dim)
		for i := range grads {
			grads[i] = float32(rng.NormFloat64())
		}
		must(ps.Pull(batch, keys, weights))
		ps.EndPullPhase(batch)
		must(ps.Push(batch, keys, grads))
		must(ps.EndBatch(batch))
	}
	snapshot := func(batch int64) {
		keys := []uint64{1, 2}
		weights := make([]float32, len(keys)*dim)
		must(ps.Pull(batch+1, keys, weights))
		ps.EndPullPhase(batch + 1)
		must(ps.EndBatch(batch + 1))
		snap := map[uint64][]float32{}
		for i, k := range keys {
			snap[k] = append([]float32(nil), weights[i*dim:(i+1)*dim]...)
		}
		oracle[batch] = snap
	}

	fmt.Println("training batches 0-9 ...")
	for b := int64(0); b < 10; b++ {
		trainBatch(b)
	}
	fmt.Println("requesting checkpoint at batch 9 (cheap: just enqueues)")
	must(ps.RequestCheckpoint(9))
	snapshot(9) // remember the state the checkpoint must capture

	fmt.Println("training batches 12-19 (checkpoint completes in the background) ...")
	for b := int64(12); b < 20; b++ {
		trainBatch(b)
	}
	fmt.Printf("completed checkpoint: %d\n", ps.CompletedCheckpoint())

	fmt.Println("\n*** POWER FAILURE *** (unflushed DRAM and PMem store buffers lost)")
	ps.SimulateCrash()
	must(ps.Save()) // the durable image is what a DAX-mapped file would hold
	must(ps.Engine().Close())

	fmt.Println("restarting from the PMem image ...")
	ps, err = openembedding.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()
	fmt.Printf("recovered to checkpoint batch %d\n", ps.RecoveredBatch)

	// Verify: keys 1 and 2 must hold exactly their batch-9 state; the
	// post-checkpoint updates (batches 12-19) are gone, atomically.
	keys := []uint64{1, 2}
	weights := make([]float32, len(keys)*dim)
	must(ps.Pull(ps.RecoveredBatch+1, keys, weights))
	ps.EndPullPhase(ps.RecoveredBatch + 1)
	must(ps.EndBatch(ps.RecoveredBatch + 1))
	want := oracle[9]
	for i, k := range keys {
		got := weights[i*dim : (i+1)*dim]
		for d := range got {
			if got[d] != want[k][d] {
				log.Fatalf("MISMATCH key %d[%d]: recovered %v, checkpoint state %v", k, d, got[d], want[k][d])
			}
		}
	}
	fmt.Println("state verified: recovered weights == checkpoint-9 state, post-checkpoint updates discarded")

	fmt.Println("resuming training at batch", ps.RecoveredBatch+2)
	for b := ps.RecoveredBatch + 2; b < ps.RecoveredBatch+6; b++ {
		trainBatch(b)
	}
	fmt.Println("resumed OK")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
