// engine_comparison runs the same synchronous workload through all four
// storage engines — PMem-OE and the paper's three comparison points — and
// prints both real wall-clock throughput (this machine, scaled-down store)
// and the calibrated virtual-time profile that the paper-scale experiments
// build on (who spends time on which device, and what is hidden behind the
// GPU phase).
package main

import (
	"fmt"
	"log"
	"time"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/engines/dramps"
	"openembedding/internal/engines/oricache"
	"openembedding/internal/engines/pmemhash"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

const (
	dim     = 32
	keys    = 1 << 15
	cache   = 1 << 10
	batches = 60
	draws   = 512
)

func build(kind string) (psengine.Engine, *simclock.Meter, error) {
	cfg := psengine.Config{
		Dim: dim, Optimizer: optim.NewAdaGrad(0.05),
		Capacity: keys, CacheEntries: cache,
		Meter: simclock.NewMeter(),
	}.WithDefaults()
	newArena := func() (*pmem.Arena, error) {
		payload := pmem.FloatBytes(cfg.EntryFloats())
		dev := pmem.NewDevice(pmem.ArenaLayout(payload, keys*3), device.NewTimedPMem(cfg.Meter))
		return pmem.NewArena(dev, payload, keys*3)
	}
	switch kind {
	case "pmem-oe":
		a, err := newArena()
		if err != nil {
			return nil, nil, err
		}
		e, err := core.New(cfg, a)
		return e, cfg.Meter, err
	case "dram-ps":
		e, err := dramps.New(cfg, dramps.Options{})
		return e, cfg.Meter, err
	case "ori-cache":
		a, err := newArena()
		if err != nil {
			return nil, nil, err
		}
		e, err := oricache.New(cfg, a, oricache.Options{})
		return e, cfg.Meter, err
	case "pmem-hash":
		a, err := newArena()
		if err != nil {
			return nil, nil, err
		}
		e, err := pmemhash.New(cfg, a)
		return e, cfg.Meter, err
	}
	return nil, nil, fmt.Errorf("unknown engine %q", kind)
}

func main() {
	fmt.Printf("%d keys x dim %d, cache %d entries, %d batches x %d lookups\n\n",
		keys, dim, cache, batches, draws)
	fmt.Printf("%-10s %10s %9s %12s %12s %12s\n",
		"engine", "keys/sec", "miss", "pmem-read", "pmem-write", "serialized")

	for _, kind := range []string{"dram-ps", "pmem-oe", "ori-cache", "pmem-hash"} {
		eng, meter, err := build(kind)
		if err != nil {
			log.Fatal(err)
		}
		sampler := workload.NewTableIISkew(keys, 42)
		grads := make([]float32, draws*dim)
		for i := range grads {
			grads[i] = 0.01
		}
		dst := make([]float32, draws*dim)

		start := time.Now()
		totalKeys := 0
		for b := int64(0); b < batches; b++ {
			ks := workload.Batch(sampler, draws)
			totalKeys += len(ks)
			if err := eng.Pull(b, ks, dst[:len(ks)*dim]); err != nil {
				log.Fatal(err)
			}
			eng.EndPullPhase(b)
			eng.WaitMaintenance()
			if err := eng.Push(b, ks, grads[:len(ks)*dim]); err != nil {
				log.Fatal(err)
			}
			if err := eng.EndBatch(b); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		st := eng.Stats()
		snap := meter.Snapshot()
		fmt.Printf("%-10s %10.0f %8.1f%% %12v %12v %12v\n",
			eng.Name(),
			float64(2*totalKeys)/elapsed.Seconds(), // pull + push ops
			st.MissRate()*100,
			snap.Total(simclock.PMemRead).Round(time.Microsecond),
			snap.Total(simclock.PMemWrite).Round(time.Microsecond),
			snap.Total(simclock.GlobalSync).Round(time.Microsecond))
		eng.Close()
	}

	fmt.Println("\nreading the virtual-time columns:")
	fmt.Println("  dram-ps   touches no PMem at all — the expensive upper bound")
	fmt.Println("  pmem-oe   pays PMem time, but in the maintenance phase (hidden behind GPU)")
	fmt.Println("  ori-cache pays PMem inline AND serializes on its global LRU lock")
	fmt.Println("  pmem-hash pays PMem on every single operation")
}
