// Quickstart: an embedded OpenEmbedding parameter-server shard driving a
// minimal synchronous-training loop — pull embeddings, "compute", push
// gradients, checkpoint — and a peek at the engine statistics.
package main

import (
	"fmt"
	"log"

	"openembedding"
)

func main() {
	// A small embedding table: 4-dim entries, AdaGrad server-side, DRAM
	// cache for the hot 256 entries, everything else on (simulated) PMem.
	ps, err := openembedding.Open(openembedding.Config{
		Dim:          4,
		Capacity:     10_000,
		CacheEntries: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()

	keys := []uint64{1, 2, 42}
	weights := make([]float32, len(keys)*ps.Dim())
	grads := make([]float32, len(keys)*ps.Dim())

	for batch := int64(0); batch < 5; batch++ {
		// 1. Pull the batch's embedding entries (created on first touch).
		if err := ps.Pull(batch, keys, weights); err != nil {
			log.Fatal(err)
		}
		// 2. Signal the pull phase done: cache maintenance (LRU, PMem
		//    write-back, checkpoint flushes) now runs in the background,
		//    hidden behind the dense compute that would happen here.
		ps.EndPullPhase(batch)

		// ... dense forward/backward would run here; fake a gradient ...
		for i := range grads {
			grads[i] = 0.1 * weights[i]
		}

		// 3. Push gradients; the server applies AdaGrad per entry.
		if err := ps.Push(batch, keys, grads); err != nil {
			log.Fatal(err)
		}
		// 4. Seal the batch.
		if err := ps.EndBatch(batch); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: key 42 -> %v\n", batch, weights[2*ps.Dim():3*ps.Dim()])
	}

	// Checkpoint the latest sealed batch: the request just enqueues; the
	// co-designed cache maintenance completes it during later batches.
	if err := ps.RequestCheckpoint(4); err != nil {
		log.Fatal(err)
	}
	// One more batch gives maintenance a chance to finish it.
	if err := ps.Pull(5, keys, weights); err != nil {
		log.Fatal(err)
	}
	ps.EndPullPhase(5)
	if err := ps.EndBatch(5); err != nil {
		log.Fatal(err)
	}

	st := ps.Stats()
	fmt.Printf("\nentries=%d cached=%d hits=%d misses=%d pmem-writes=%d\n",
		st.Entries, st.CachedEntries, st.Hits, st.Misses, st.PMemWrites)
	fmt.Printf("completed checkpoint: batch %d\n", ps.CompletedCheckpoint())
}
