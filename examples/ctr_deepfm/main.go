// ctr_deepfm trains a real DeepFM click-through-rate model on a synthetic
// Criteo-schema stream through the full OpenEmbedding stack: sparse
// features live in the PMem-backed parameter server, the dense model runs
// data-parallel across simulated GPU workers, and periodic batch-aware
// checkpoints complete with no training pause.
//
// Watch the log loss fall and the AUC climb above 0.5 — the functional
// path is real end to end.
package main

import (
	"fmt"
	"log"

	"openembedding"
	"openembedding/internal/model"
	"openembedding/internal/train"
	"openembedding/internal/workload"
)

func main() {
	const (
		dim     = 8
		workers = 2
		steps   = 250
	)
	gen := func(seed int64) *workload.CriteoSynthetic {
		return workload.NewCriteo(workload.CriteoConfig{Scale: 0.0005, Seed: 11, StreamSeed: seed})
	}
	tableSize := gen(0).Keys()

	ps, err := openembedding.Open(openembedding.Config{
		Dim:          dim,
		Capacity:     tableSize + 1,
		CacheEntries: 8192,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()
	fmt.Printf("embedding table: %d entries x dim %d (%.1f MB sparse state on PMem)\n",
		tableSize, dim, float64(tableSize*dim*2*4)/(1<<20))

	trainer, err := train.New(train.Config{
		Workers:   workers,
		BatchSize: 256,
		Model: model.DeepFMConfig{
			Fields: workload.CriteoNumSparse,
			Dim:    dim,
			Dense:  workload.CriteoNumDense,
			Hidden: []int{32, 16},
			LR:     0.05,
			Seed:   1,
		},
		DataSeed:        7,
		Data:            gen,
		CheckpointEvery: 80,
	}, train.Local{Engine: ps.Engine()})
	if err != nil {
		log.Fatal(err)
	}

	stats, err := trainer.Run(steps)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < len(stats.Steps); i += 50 {
		fmt.Printf("batch %3d  logloss %.4f\n", stats.Steps[i].Batch, stats.Steps[i].Loss)
	}
	fmt.Printf("batch %3d  logloss %.4f (final)\n",
		stats.Steps[len(stats.Steps)-1].Batch, stats.FinalLoss)

	// Evaluate AUC on held-out samples using worker 0's dense model and
	// embeddings pulled from the PS.
	auc, err := evaluateAUC(ps, trainer, gen(999), 2000) // same labeler, fresh stream
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out AUC: %.3f (0.5 = random)\n", auc)
	fmt.Printf("checkpoints requested: %d, completed through batch %d\n",
		stats.Checkpoints, ps.CompletedCheckpoint())
	st := ps.Stats()
	fmt.Printf("PS: %d entries, %.1f%% cache miss rate, %d PMem writes\n",
		st.Entries, st.MissRate()*100, st.PMemWrites)
}

func evaluateAUC(ps *openembedding.Server, tr *train.Trainer, data *workload.CriteoSynthetic, n int) (float64, error) {
	samples := data.NextBatch(n)
	keys := workload.UniqueKeys(samples)
	weights := make([]float32, len(keys)*ps.Dim())
	if err := ps.Pull(1_000_000, keys, weights); err != nil {
		return 0, err
	}
	ps.EndPullPhase(1_000_000)
	if err := ps.EndBatch(1_000_000); err != nil {
		return 0, err
	}
	idx := make(map[uint64]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}

	m := tr.Model()
	cfg := m.Config()
	emb := make([]float32, n*cfg.Fields*cfg.Dim)
	dense := make([]float32, n*cfg.Dense)
	labels := make([]float32, n)
	for ex, s := range samples {
		for f := 0; f < cfg.Fields; f++ {
			ki := idx[s.Sparse[f]]
			copy(emb[(ex*cfg.Fields+f)*cfg.Dim:(ex*cfg.Fields+f+1)*cfg.Dim],
				weights[ki*cfg.Dim:(ki+1)*cfg.Dim])
		}
		copy(dense[ex*cfg.Dense:(ex+1)*cfg.Dense], s.Dense[:cfg.Dense])
		labels[ex] = s.Label
	}
	preds, err := m.Predict(emb, dense, n)
	if err != nil {
		return 0, err
	}
	return model.AUC(preds, labels), nil
}
